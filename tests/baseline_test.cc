#include <gtest/gtest.h>

#include "baseline/mr_matmul.h"
#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

class BaselineRealTest : public ::testing::TestWithParam<MrStrategy> {
 protected:
  BaselineRealTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}) {}

  Rng rng_{23};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
};

TEST_P(BaselineRealTest, ComputesCorrectProduct) {
  const MrStrategy strategy = GetParam();
  TiledMatrix a{"A", TileLayout::Square(40, 24, 8)};
  TiledMatrix b{"B", TileLayout::Square(24, 32, 8)};
  TiledMatrix c{"C", TileLayout::Square(40, 32, 8)};
  DenseMatrix da = DenseMatrix::Gaussian(40, 24, &rng_);
  DenseMatrix db = DenseMatrix::Gaussian(24, 32, &rng_);
  ASSERT_TRUE(StoreDense(da, a, &store_).ok());
  ASSERT_TRUE(StoreDense(db, b, &store_).ok());

  MrOptions options;
  auto stats = RunMrMultiply(strategy, a, b, c, &store_, &engine_, cost_,
                             options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->num_tasks, 0);

  auto loaded = LoadDense(c, &store_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto expected = da.Multiply(db);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST_P(BaselineRealTest, RejectsShapeMismatch) {
  TiledMatrix a{"A", TileLayout::Square(8, 8, 8)};
  TiledMatrix b{"B", TileLayout::Square(9, 8, 8)};
  TiledMatrix c{"C", TileLayout::Square(8, 8, 8)};
  MrOptions options;
  EXPECT_FALSE(RunMrMultiply(GetParam(), a, b, c, &store_, &engine_, cost_,
                             options).ok());
}

INSTANTIATE_TEST_SUITE_P(Strategies, BaselineRealTest,
                         ::testing::Values(MrStrategy::kRmm,
                                           MrStrategy::kCpmm));

TEST(BaselineRealTest2, CpmmCleansUpPartials) {
  Rng rng(29);
  InMemoryTileStore store;
  TileOpCostModel cost;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 2},
                    RealEngineOptions{});
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  DenseMatrix da = DenseMatrix::Gaussian(16, 16, &rng);
  DenseMatrix db = DenseMatrix::Gaussian(16, 16, &rng);
  ASSERT_TRUE(StoreDense(da, a, &store).ok());
  ASSERT_TRUE(StoreDense(db, b, &store).ok());
  ASSERT_TRUE(RunMrMultiply(MrStrategy::kCpmm, a, b, c, &store, &engine, cost,
                            MrOptions{}).ok());
  EXPECT_FALSE(store.Get("C#cpmm_0", TileId{0, 0}, -1).ok());
}

// ---------------------------------------------------------------------------
// Simulated comparison: the headline E1 shape in miniature
// ---------------------------------------------------------------------------

struct SimHarness {
  SimHarness()
      : dfs(DfsOptions{8, 3, 4 << 20, 1}),
        store(&dfs),
        cluster{MachineProfile{"m", 2, 2.0, 100, 100, 0.2}, 8, 2},
        engine(cluster, SimEngineOptions{}) {}

  Status LoadInput(const TiledMatrix& m) {
    for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
        const int64_t bytes = 16 +
                              m.layout.TileRowsAt(r) * m.layout.TileColsAt(c) *
                                  8;
        CUMULON_RETURN_IF_ERROR(store.PutMeta(m.name, TileId{r, c}, bytes, -1));
      }
    }
    return Status::OK();
  }

  SimDfs dfs;
  DfsTileStore store;
  ClusterConfig cluster;
  SimEngine engine;
  TileOpCostModel cost;
};

TEST(BaselineSimTest, MrStrategiesMoveMoreDataThanCumulon) {
  SimHarness h;
  TiledMatrix a{"A", TileLayout::Square(8192, 8192, 1024)};
  TiledMatrix b{"B", TileLayout::Square(8192, 8192, 1024)};
  ASSERT_TRUE(h.LoadInput(a).ok());
  ASSERT_TRUE(h.LoadInput(b).ok());

  // Cumulon map-only multiply.
  TiledMatrix c1{"C1", TileLayout::Square(8192, 8192, 1024)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c1, MatMulParams{2, 2, 0}, {}, &plan).ok());
  ExecutorOptions exec_options;
  exec_options.real_mode = false;
  Executor executor(&h.store, &h.engine, &h.cost, exec_options);
  auto cumulon = executor.Run(plan);
  ASSERT_TRUE(cumulon.ok()) << cumulon.status();

  MrOptions mr;
  mr.real_mode = false;
  TiledMatrix c2{"C2", TileLayout::Square(8192, 8192, 1024)};
  auto rmm = RunMrMultiply(MrStrategy::kRmm, a, b, c2, &h.store, &h.engine,
                           h.cost, mr);
  ASSERT_TRUE(rmm.ok()) << rmm.status();
  TiledMatrix c3{"C3", TileLayout::Square(8192, 8192, 1024)};
  auto cpmm = RunMrMultiply(MrStrategy::kCpmm, a, b, c3, &h.store, &h.engine,
                            h.cost, mr);
  ASSERT_TRUE(cpmm.ok()) << cpmm.status();

  // Both baselines shuffle data; Cumulon shuffles none.
  EXPECT_GT(rmm->shuffle_bytes, 0);
  EXPECT_GT(cpmm->shuffle_bytes, 0);
  // And the paper's headline: Cumulon is faster than both on this shape.
  EXPECT_LT(cumulon->total_seconds, rmm->total_seconds);
  EXPECT_LT(cumulon->total_seconds, cpmm->total_seconds);
}

TEST(BaselineSimTest, RmmShuffleGrowsWithOutputGrid) {
  SimHarness h;
  // Same input volume, wider output grid -> more replication for RMM.
  TiledMatrix a1{"A1", TileLayout::Square(4096, 4096, 1024)};
  TiledMatrix b1{"B1", TileLayout::Square(4096, 4096, 1024)};
  TiledMatrix a2{"A2", TileLayout::Square(4096, 1024, 1024)};
  TiledMatrix b2{"B2", TileLayout::Square(1024, 16384, 1024)};
  for (const auto& m : {a1, b1, a2, b2}) ASSERT_TRUE(h.LoadInput(m).ok());

  MrOptions mr;
  mr.real_mode = false;
  TiledMatrix c1{"C1", TileLayout::Square(4096, 4096, 1024)};
  TiledMatrix c2{"C2", TileLayout::Square(4096, 16384, 1024)};
  auto square = RunMrMultiply(MrStrategy::kRmm, a1, b1, c1, &h.store,
                              &h.engine, h.cost, mr);
  auto wide = RunMrMultiply(MrStrategy::kRmm, a2, b2, c2, &h.store, &h.engine,
                            h.cost, mr);
  ASSERT_TRUE(square.ok() && wide.ok());
  // The wide multiply replicates A across 16 output columns.
  EXPECT_GT(wide->shuffle_bytes, square->shuffle_bytes / 2);
}

TEST(BaselineSimTest, CpmmWritesPartialsProportionalToK) {
  SimHarness h;
  TiledMatrix a{"A", TileLayout::Square(2048, 8192, 1024)};  // gk = 8
  TiledMatrix b{"B", TileLayout::Square(8192, 2048, 1024)};
  ASSERT_TRUE(h.LoadInput(a).ok());
  ASSERT_TRUE(h.LoadInput(b).ok());
  MrOptions mr;
  mr.real_mode = false;
  TiledMatrix c{"C", TileLayout::Square(2048, 2048, 1024)};
  auto stats = RunMrMultiply(MrStrategy::kCpmm, a, b, c, &h.store, &h.engine,
                             h.cost, mr);
  ASSERT_TRUE(stats.ok());
  // 8 partial copies of C written in job 1 (plus the final C).
  const int64_t c_bytes = 2048 * 2048 * 8;
  EXPECT_GT(stats->bytes_written, 8 * c_bytes);
}

TEST(BaselineSimTest, StrategyNamesAreStable) {
  EXPECT_STREQ(MrStrategyName(MrStrategy::kRmm), "RMM");
  EXPECT_STREQ(MrStrategyName(MrStrategy::kCpmm), "CPMM");
}

}  // namespace
}  // namespace cumulon
