#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/driver.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  DriverTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  Rng rng_{121};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
};

TEST_F(DriverTest, RunsExactlyMaxIterationsWithoutPredicate) {
  TiledMatrix x{"x", TileLayout::Square(8, 8, 8)};
  DenseMatrix dx = DenseMatrix::Constant(8, 8, 1.0);
  ASSERT_TRUE(StoreDense(dx, x, &store_).ok());

  Program body;
  body.Assign("x", Scale(Expr::Input("x", 8, 8), 2.0));
  IterativeRunOptions options;
  options.lowering.tile_dim = 8;
  options.max_iterations = 5;
  auto run = RunIterative(body, {{"x", x}}, &executor_, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->iterations, 5);
  EXPECT_FALSE(run->converged);

  auto result = LoadDense(run->bindings.at("x"), &store_);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(3, 3), 32.0);  // 2^5
}

TEST_F(DriverTest, PredicateStopsEarly) {
  TiledMatrix x{"x", TileLayout::Square(8, 8, 8)};
  ASSERT_TRUE(
      StoreDense(DenseMatrix::Constant(8, 8, 1.0), x, &store_).ok());

  Program body;
  body.Assign("x", Scale(Expr::Input("x", 8, 8), 2.0));
  IterativeRunOptions options;
  options.lowering.tile_dim = 8;
  options.max_iterations = 100;
  InMemoryTileStore* store = &store_;
  options.converged = [store](const IterationState& state) -> Result<bool> {
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix x_now,
                             LoadDense(state.bindings->at("x"), store));
    return x_now.At(0, 0) >= 8.0;  // stop once the value reaches 8
  };
  auto run = RunIterative(body, {{"x", x}}, &executor_, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->iterations, 3);  // 2, 4, 8
  EXPECT_TRUE(run->converged);
}

TEST_F(DriverTest, GnmfConvergesByResidualThreshold) {
  GnmfSpec spec;
  spec.m = 16;
  spec.n = 12;
  spec.k = 4;
  std::map<std::string, TiledMatrix> bindings;
  DenseMatrix dv(spec.m, spec.n);
  for (auto [name, rows, cols] :
       {std::tuple<const char*, int64_t, int64_t>{"V", spec.m, spec.n},
        {"W", spec.m, spec.k},
        {"H", spec.k, spec.n}}) {
    DenseMatrix dense = DenseMatrix::Uniform(rows, cols, &rng_, 0.1, 1.0);
    if (std::string(name) == "V") dv = dense;
    TiledMatrix matrix{name, TileLayout::Square(rows, cols, 8)};
    ASSERT_TRUE(StoreDense(dense, matrix, &store_).ok());
    bindings.insert_or_assign(name, matrix);
  }

  IterativeRunOptions options;
  options.lowering.tile_dim = 8;
  options.max_iterations = 200;
  InMemoryTileStore* store = &store_;
  double previous = 1e300;
  options.converged = [&, store](const IterationState& state) -> Result<bool> {
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix w,
                             LoadDense(state.bindings->at("W"), store));
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix h,
                             LoadDense(state.bindings->at("H"), store));
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix wh, w.Multiply(h));
    CUMULON_ASSIGN_OR_RETURN(DenseMatrix diff, dv.Binary(BinaryOp::kSub, wh));
    const double error = diff.FrobeniusNorm();
    // Multiplicative updates never increase the objective.
    EXPECT_LE(error, previous + 1e-9);
    const bool done = previous - error < 0.005 * error;  // <0.5% improvement
    previous = error;
    return done;
  };
  auto run = RunIterative(BuildGnmfIteration(spec), bindings, &executor_,
                          options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->converged);
  EXPECT_GT(run->iterations, 1);
  EXPECT_LT(run->iterations, 200);
}

TEST_F(DriverTest, PredicateErrorPropagates) {
  TiledMatrix x{"x", TileLayout::Square(8, 8, 8)};
  ASSERT_TRUE(
      StoreDense(DenseMatrix::Constant(8, 8, 1.0), x, &store_).ok());
  Program body;
  body.Assign("x", Scale(Expr::Input("x", 8, 8), 2.0));
  IterativeRunOptions options;
  options.lowering.tile_dim = 8;
  options.converged = [](const IterationState&) -> Result<bool> {
    return Status::Internal("predicate exploded");
  };
  auto run = RunIterative(body, {{"x", x}}, &executor_, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

/// Regression: an iterative driver re-binds a target to the versioned
/// output of the previous iteration ("x" -> "x@v1"). A fresh Lowerer
/// restarts its version counter, so without tracking the names already
/// taken by the caller's bindings it would mint "x@v1" again — one job
/// consuming and producing the same matrix, breaking the
/// one-immutable-value-per-name invariant lowering documents.
TEST_F(DriverTest, RelowerWithReboundVersionedBindingDoesNotCollide) {
  Program body;
  body.Assign("x", Scale(Expr::Input("x", 8, 8), 2.0));
  LoweringOptions lowering;
  lowering.tile_dim = 8;
  std::map<std::string, TiledMatrix> bindings;
  bindings.insert_or_assign("x", TiledMatrix{"x", TileLayout::Square(8, 8, 8)});
  ASSERT_TRUE(
      StoreDense(DenseMatrix::Constant(8, 8, 1.0), bindings.at("x"), &store_)
          .ok());
  for (int iteration = 0; iteration < 3; ++iteration) {
    auto lowered = Lower(body, bindings, lowering);
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    const TiledMatrix out = lowered->outputs.at("x");
    // The new value must land under a fresh name, never the input's: a
    // job that reads and writes the same matrix races against itself.
    EXPECT_NE(out.name, bindings.at("x").name) << "iteration " << iteration;
    for (const auto& job : lowered->plan.jobs) {
      for (const std::string& input : job->InputMatrices()) {
        EXPECT_NE(input, out.name) << "iteration " << iteration;
      }
    }
    ASSERT_TRUE(executor_.Run(lowered->plan).ok());
    bindings.insert_or_assign("x", out);
  }
  auto result = LoadDense(bindings.at("x"), &store_);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0), 8.0);  // 2^3
}

TEST_F(DriverTest, ZeroIterationsIsANoOp) {
  TiledMatrix x{"x", TileLayout::Square(8, 8, 8)};
  ASSERT_TRUE(
      StoreDense(DenseMatrix::Constant(8, 8, 1.0), x, &store_).ok());
  Program body;
  body.Assign("x", Scale(Expr::Input("x", 8, 8), 2.0));
  IterativeRunOptions options;
  options.lowering.tile_dim = 8;
  options.max_iterations = 0;
  auto run = RunIterative(body, {{"x", x}}, &executor_, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->iterations, 0);
  EXPECT_EQ(run->bindings.at("x").name, "x");
}

}  // namespace
}  // namespace cumulon
