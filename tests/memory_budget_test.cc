// The out-of-core memory ledger: hard-cap TryAcquire semantics, spill
// accounting, the per-node group, and the budgeted TaskTileReader's
// LRU pinned-panel window (evict, re-fetch, unpinned fallback, scratch
// reservations).

#include <memory>

#include <gtest/gtest.h>

#include "exec/memory_budget.h"
#include "exec/prefetch_pipeline.h"
#include "matrix/tile_store.h"
#include "matrix/tile_ops.h"

namespace cumulon {
namespace {

TEST(MemoryBudgetTest, TryAcquireNeverExceedsBudget) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryAcquire(60));
  EXPECT_TRUE(budget.TryAcquire(40));
  EXPECT_EQ(budget.used_bytes(), 100);
  EXPECT_FALSE(budget.TryAcquire(1)) << "the cap is hard";
  EXPECT_EQ(budget.used_bytes(), 100) << "failed acquire must not charge";
  budget.Release(50);
  EXPECT_TRUE(budget.TryAcquire(50));
  EXPECT_EQ(budget.counters().acquire_failures, 1);
}

TEST(MemoryBudgetTest, ZeroOrNegativeBudgetIsUnlimited) {
  MemoryBudget unlimited(0);
  EXPECT_TRUE(unlimited.TryAcquire(1LL << 40));
  EXPECT_EQ(unlimited.used_bytes(), 1LL << 40);
  MemoryBudget negative(-5);
  EXPECT_TRUE(negative.TryAcquire(1LL << 40));
}

TEST(MemoryBudgetTest, PeakTracksHighWaterMark) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryAcquire(700));
  budget.Release(500);
  EXPECT_TRUE(budget.TryAcquire(100));
  EXPECT_EQ(budget.used_bytes(), 300);
  EXPECT_EQ(budget.peak_bytes(), 700);
}

TEST(MemoryBudgetTest, ReleaseClampsAtZero) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryAcquire(10));
  budget.Release(50);  // defensive: over-release must not go negative
  EXPECT_EQ(budget.used_bytes(), 0);
}

TEST(MemoryBudgetTest, NegativeAcquireIsRejected) {
  MemoryBudget budget(100);
  EXPECT_FALSE(budget.TryAcquire(-1));
  EXPECT_EQ(budget.used_bytes(), 0);
}

TEST(MemoryBudgetTest, SpillCountersAccumulate) {
  MemoryBudget budget(100);
  budget.NoteEviction(40);
  budget.NoteEviction(60);
  budget.NoteRefetch(40);
  budget.NoteUnpinnedRead(12);
  const MemoryBudget::Counters c = budget.counters();
  EXPECT_EQ(c.evictions, 2);
  EXPECT_EQ(c.evicted_bytes, 100);
  EXPECT_EQ(c.refetches, 1);
  EXPECT_EQ(c.refetch_bytes, 40);
  EXPECT_EQ(c.unpinned_reads, 1);
}

TEST(MemoryBudgetGroupTest, NodesAreIndependentAndTotalsFold) {
  MemoryBudgetGroup group(2, 100);
  EXPECT_EQ(group.num_nodes(), 2);
  EXPECT_EQ(group.budget_bytes_per_node(), 100);
  EXPECT_TRUE(group.node(0)->TryAcquire(100));
  EXPECT_FALSE(group.node(0)->TryAcquire(1));
  EXPECT_TRUE(group.node(1)->TryAcquire(30)) << "node 1 has its own ledger";
  group.node(1)->NoteEviction(10);
  EXPECT_EQ(group.TotalCounters().evictions, 1);
  EXPECT_EQ(group.MaxPeakBytes(), 100);
  // Machine indices wrap defensively.
  EXPECT_EQ(group.node(2), group.node(0));
}

// ---------------------------------------------------------------------------
// Budgeted TaskTileReader: the pinned-panel LRU window.
// ---------------------------------------------------------------------------

std::shared_ptr<const Tile> MakeTile(int64_t dim, double value) {
  auto tile = std::make_shared<Tile>(dim, dim);
  FillTile(tile.get(), value);
  return tile;
}

class BudgetedReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          store_.Put("m", TileId{0, i}, MakeTile(8, 1.0 + i), 0).ok());
    }
    tile_mem_ = MakeTile(8, 0.0)->MemoryBytes();
  }

  InMemoryTileStore store_;
  int64_t tile_mem_ = 0;
};

TEST_F(BudgetedReaderTest, PinsUpToBudgetThenSpillsLru) {
  MemoryBudget ledger(100 * tile_mem_);  // node ledger is not the binding cap
  TaskTileReader reader(&store_, 0, /*budget_bytes=*/0, &ledger,
                        /*pin_budget_bytes=*/2 * tile_mem_);
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 1}).ok());
  EXPECT_EQ(reader.pinned_bytes(), 2 * tile_mem_);
  EXPECT_EQ(ledger.counters().evictions, 0);

  // A third pin exceeds the pin budget: the least-recently-used panel
  // (tile 0) spills.
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 2}).ok());
  EXPECT_EQ(reader.pinned_bytes(), 2 * tile_mem_);
  EXPECT_EQ(ledger.counters().evictions, 1);
  EXPECT_EQ(ledger.counters().evicted_bytes, tile_mem_);

  // Touching the spilled panel again re-fetches it (and spills tile 1).
  auto again = reader.ReadMemoized("m", TileId{0, 0});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->At(0, 0), 1.0);
  EXPECT_EQ(ledger.counters().refetches, 1);
  EXPECT_EQ(ledger.counters().refetch_bytes, tile_mem_);
}

TEST_F(BudgetedReaderTest, LruTouchKeepsHotPanelResident) {
  MemoryBudget ledger(100 * tile_mem_);
  TaskTileReader reader(&store_, 0, 0, &ledger, 2 * tile_mem_);
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 1}).ok());
  // Re-touch tile 0 so tile 1 is now least recently used...
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 2}).ok());
  // ...then tile 0 must still be resident: no re-fetch on this touch.
  const int64_t refetches_before = ledger.counters().refetches;
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  EXPECT_EQ(ledger.counters().refetches, refetches_before);
}

TEST_F(BudgetedReaderTest, ZeroPinBudgetStreamsUnpinned) {
  MemoryBudget ledger(100 * tile_mem_);
  TaskTileReader reader(&store_, 0, 0, &ledger, /*pin_budget_bytes=*/0);
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  EXPECT_EQ(reader.pinned_bytes(), 0);
  EXPECT_GE(ledger.counters().unpinned_reads, 2)
      << "every read streamed through without pinning";
}

TEST_F(BudgetedReaderTest, LedgerCapBindsWhenTighterThanPinBudget) {
  // Ledger already mostly full: only one tile fits even though the pin
  // budget would allow two.
  MemoryBudget ledger(2 * tile_mem_ - 1);
  TaskTileReader reader(&store_, 0, 0, &ledger, 2 * tile_mem_);
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
  ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 1}).ok());
  EXPECT_EQ(reader.pinned_bytes(), tile_mem_);
  EXPECT_LE(ledger.used_bytes(), ledger.budget_bytes());
  EXPECT_GE(ledger.counters().evictions, 1);
}

TEST_F(BudgetedReaderTest, ScratchSpillsPinsAndReleasesOnDestruct) {
  MemoryBudget ledger(2 * tile_mem_);
  {
    TaskTileReader reader(&store_, 0, 0, &ledger, 2 * tile_mem_);
    ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 0}).ok());
    ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, 1}).ok());
    {
      const TaskTileReader::ScratchReservation scratch =
          reader.PinScratch(tile_mem_);
      EXPECT_EQ(scratch.bytes(), tile_mem_)
          << "scratch must fit by spilling a pinned panel";
      EXPECT_GE(ledger.counters().evictions, 1);
      EXPECT_LE(ledger.used_bytes(), ledger.budget_bytes());
    }
    EXPECT_EQ(ledger.used_bytes(), reader.pinned_bytes())
        << "scratch released on scope exit";
  }
  EXPECT_EQ(ledger.used_bytes(), 0) << "reader released every charged byte";
}

TEST_F(BudgetedReaderTest, UnbudgetedReaderPinsWithoutLimit) {
  TaskTileReader reader(&store_, 0, /*budget_bytes=*/0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reader.ReadMemoized("m", TileId{0, i}).ok());
  }
  auto first = reader.ReadMemoized("m", TileId{0, 0});
  auto second = reader.ReadMemoized("m", TileId{0, 0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get())
      << "classic unbudgeted memoization still serves one shared copy";
  const TaskTileReader::ScratchReservation scratch =
      reader.PinScratch(1 << 20);
  EXPECT_EQ(scratch.bytes(), 0) << "scratch is a no-op without a ledger";
}

}  // namespace
}  // namespace cumulon
