#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// RealEngine retry
// ---------------------------------------------------------------------------

TEST(RetryTest, TransientFailureRecoversWithRetries) {
  RealEngineOptions options;
  options.max_attempts = 3;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 2}, options);
  std::atomic<int> calls{0};
  JobSpec job;
  Task t;
  t.name = "flaky";
  t.work = [&calls](int) {
    return calls.fetch_add(1) < 2 ? Status::Internal("transient")
                                  : Status::OK();
  };
  job.tasks.push_back(std::move(t));
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(calls.load(), 3);
}

TEST(RetryTest, PermanentFailureStillFailsAfterAllAttempts) {
  RealEngineOptions options;
  options.max_attempts = 3;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 1}, options);
  std::atomic<int> calls{0};
  JobSpec job;
  Task t;
  t.name = "broken";
  t.work = [&calls](int) {
    calls.fetch_add(1);
    return Status::Internal("permanent");
  };
  job.tasks.push_back(std::move(t));
  auto stats = engine.RunJob(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(calls.load(), 3);
  EXPECT_NE(stats.status().message().find("after 3 attempt"),
            std::string::npos);
}

TEST(RetryTest, DefaultIsSingleAttempt) {
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 1},
                    RealEngineOptions{});
  std::atomic<int> calls{0};
  JobSpec job;
  Task t;
  t.work = [&calls](int) {
    calls.fetch_add(1);
    return Status::Internal("boom");
  };
  job.tasks.push_back(std::move(t));
  EXPECT_FALSE(engine.RunJob(job).ok());
  EXPECT_EQ(calls.load(), 1);
}

// ---------------------------------------------------------------------------
// Failure injection through the storage layer
// ---------------------------------------------------------------------------

/// Decorator that fails the first `failures` Get() calls, then behaves
/// normally — simulating transient storage hiccups.
class FlakyTileStore : public TileStore {
 public:
  FlakyTileStore(TileStore* inner, int failures)
      : inner_(inner), remaining_failures_(failures) {}

  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const Tile> tile, int writer_node) override {
    return inner_->Put(matrix, id, std::move(tile), writer_node);
  }

  Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                          TileId id,
                                          int reader_node) override {
    if (remaining_failures_.fetch_sub(1) > 0) {
      return Status::Internal("injected storage failure");
    }
    return inner_->Get(matrix, id, reader_node);
  }

  Status DeleteMatrix(const std::string& matrix) override {
    return inner_->DeleteMatrix(matrix);
  }

 private:
  TileStore* inner_;
  std::atomic<int> remaining_failures_;
};

TEST(FailureInjectionTest, PlanSurvivesTransientStorageFailuresWithRetry) {
  InMemoryTileStore backing;
  Rng rng(71);
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  DenseMatrix da = DenseMatrix::Gaussian(16, 16, &rng);
  DenseMatrix db = DenseMatrix::Gaussian(16, 16, &rng);
  ASSERT_TRUE(StoreDense(da, a, &backing).ok());
  ASSERT_TRUE(StoreDense(db, b, &backing).ok());

  FlakyTileStore flaky(&backing, /*failures=*/3);
  RealEngineOptions engine_options;
  engine_options.max_attempts = 4;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 2}, engine_options);
  TileOpCostModel cost;
  Executor executor(&flaky, &engine, &cost, ExecutorOptions{});

  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  auto stats = executor.Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto loaded = LoadDense(c, &backing);
  ASSERT_TRUE(loaded.ok());
  auto expected = da.Multiply(db);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST(FailureInjectionTest, PersistentStorageFailureFailsThePlan) {
  InMemoryTileStore backing;
  Rng rng(72);
  TiledMatrix a{"A", TileLayout::Square(8, 8, 8)};
  DenseMatrix da = DenseMatrix::Gaussian(8, 8, &rng);
  ASSERT_TRUE(StoreDense(da, a, &backing).ok());

  FlakyTileStore flaky(&backing, /*failures=*/1000000);
  RealEngineOptions engine_options;
  engine_options.max_attempts = 2;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 1}, engine_options);
  TileOpCostModel cost;
  Executor executor(&flaky, &engine, &cost, ExecutorOptions{});

  TiledMatrix out{"Y", TileLayout::Square(8, 8, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(a, out, {EwStep::Unary(UnaryOp::kAbs)}, &plan).ok());
  EXPECT_FALSE(executor.Run(plan).ok());
}

// ---------------------------------------------------------------------------
// Simulated task failures
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// DrawTaskAttempts: the sim engine's failure/retry boundary
// ---------------------------------------------------------------------------

TEST(DrawTaskAttemptsTest, CertainFailureExhaustsExactlyMaxAttempts) {
  Rng rng(5);
  EXPECT_EQ(DrawTaskAttempts(&rng, 1.0, 4), 0);
  EXPECT_EQ(DrawTaskAttempts(&rng, 1.0, 1), 0);
}

TEST(DrawTaskAttemptsTest, CertainSuccessIsOneAttemptOneDraw) {
  Rng a(5), b(5);
  EXPECT_EQ(DrawTaskAttempts(&a, 0.0, 4), 1);
  // Exactly one draw consumed: both streams stay in lockstep afterwards.
  (void)b.NextDouble();
  EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
}

TEST(DrawTaskAttemptsTest, EveryAttemptCountUpToMaxIsReachable) {
  // At p=0.5 a seed search must find runs that succeed after exactly k-1
  // failures for every k <= max_attempts, and runs that exhaust all
  // attempts — the boundary is inclusive: max_attempts-1 failures still
  // succeed, max_attempts consecutive failures kill the job.
  const int max_attempts = 4;
  std::vector<bool> seen(max_attempts + 1, false);
  for (uint64_t seed = 1; seed <= 4096; ++seed) {
    Rng rng(seed);
    const int attempts = DrawTaskAttempts(&rng, 0.5, max_attempts);
    ASSERT_GE(attempts, 0);
    ASSERT_LE(attempts, max_attempts);
    seen[attempts] = true;
  }
  for (int k = 0; k <= max_attempts; ++k) {
    EXPECT_TRUE(seen[k]) << "attempt count " << k << " never occurred";
  }
}

TEST(DrawTaskAttemptsTest, ConsumesOneDrawPerDecidedAttempt) {
  // The RNG contract behind bit-identical replays: k attempts = k draws.
  for (uint64_t seed : {3u, 17u, 99u}) {
    Rng counted(seed);
    const int attempts = DrawTaskAttempts(&counted, 0.5, 6);
    const int decided = attempts == 0 ? 6 : attempts;
    Rng manual(seed);
    for (int i = 0; i < decided; ++i) (void)manual.NextDouble();
    EXPECT_DOUBLE_EQ(counted.NextDouble(), manual.NextDouble());
  }
}

TEST(SimFailureTest, FailuresInflateMakespan) {
  ClusterConfig cluster{MachineProfile{}, 4, 2};
  JobSpec job;
  for (int i = 0; i < 64; ++i) {
    Task t;
    t.cost.cpu_seconds_ref = 2.0;
    job.tasks.push_back(std::move(t));
  }
  SimEngineOptions clean;
  clean.task_startup_seconds = 0.0;
  SimEngineOptions lossy = clean;
  lossy.task_failure_probability = 0.3;
  SimEngine clean_engine(cluster, clean), lossy_engine(cluster, lossy);
  auto s_clean = clean_engine.RunJob(job);
  auto s_lossy = lossy_engine.RunJob(job);
  ASSERT_TRUE(s_clean.ok() && s_lossy.ok());
  EXPECT_GT(s_lossy->duration_seconds, s_clean->duration_seconds);
}

TEST(SimFailureTest, CertainFailureKillsTheJob) {
  ClusterConfig cluster{MachineProfile{}, 1, 1};
  SimEngineOptions options;
  options.task_failure_probability = 1.0;
  SimEngine engine(cluster, options);
  JobSpec job;
  job.tasks.emplace_back();
  auto stats = engine.RunJob(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

TEST(SimFailureTest, ZeroProbabilityDrawsNoRandomness) {
  // Determinism guard: enabling-the-feature-at-zero must not change
  // schedules (no RNG consumption).
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  SimEngineOptions noisy;
  noisy.noise_sigma = 0.4;
  SimEngineOptions noisy_with_zero_failures = noisy;
  noisy_with_zero_failures.task_failure_probability = 0.0;
  JobSpec job;
  for (int i = 0; i < 32; ++i) {
    Task t;
    t.cost.cpu_seconds_ref = 1.0;
    job.tasks.push_back(std::move(t));
  }
  SimEngine e1(cluster, noisy), e2(cluster, noisy_with_zero_failures);
  auto s1 = e1.RunJob(job), s2 = e2.RunJob(job);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_DOUBLE_EQ(s1->duration_seconds, s2->duration_seconds);
}

}  // namespace
}  // namespace cumulon
