#include <gtest/gtest.h>

#include "dfs/sim_dfs.h"

namespace cumulon {
namespace {

DfsOptions ClusterOf(int nodes, int replication) {
  DfsOptions o;
  o.num_nodes = nodes;
  o.replication = replication;
  o.block_size = 1024;
  return o;
}

TEST(DfsFailureTest, KillNodeRemovesItsReplicas) {
  SimDfs dfs(ClusterOf(4, 2));
  ASSERT_TRUE(dfs.Write("/f", 3000, 1, nullptr).ok());
  EXPECT_TRUE(dfs.IsNodeLive(1));
  const int64_t lost = dfs.KillNode(1);
  EXPECT_EQ(lost, 3);  // first replica of all 3 blocks lived on node 1
  EXPECT_FALSE(dfs.IsNodeLive(1));
  EXPECT_EQ(dfs.NumLiveNodes(), 3);
  // Still readable through the surviving replicas.
  EXPECT_TRUE(dfs.Read("/f", 0).ok());
}

TEST(DfsFailureTest, KillingSameNodeTwiceIsIdempotent) {
  SimDfs dfs(ClusterOf(4, 2));
  ASSERT_TRUE(dfs.Write("/f", 100, 0, nullptr).ok());
  dfs.KillNode(0);
  EXPECT_EQ(dfs.KillNode(0), 0);
}

TEST(DfsFailureTest, LosingAllReplicasMakesFileUnreadable) {
  SimDfs dfs(ClusterOf(4, 1));  // single replica
  ASSERT_TRUE(dfs.Write("/f", 100, 2, nullptr).ok());
  dfs.KillNode(2);
  auto read = dfs.Read("/f", 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DfsFailureTest, ReReplicateRestoresRedundancy) {
  SimDfs dfs(ClusterOf(6, 3));
  ASSERT_TRUE(dfs.Write("/f", 5000, 0, nullptr).ok());
  dfs.KillNode(0);
  const int64_t copied = dfs.ReReplicate();
  EXPECT_GT(copied, 0);
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  for (const BlockInfo& block : info->blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    for (int r : block.replicas) EXPECT_TRUE(dfs.IsNodeLive(r));
  }
}

TEST(DfsFailureTest, ReReplicateIsNoOpWhenHealthy) {
  SimDfs dfs(ClusterOf(5, 2));
  ASSERT_TRUE(dfs.Write("/f", 4000, 0, nullptr).ok());
  EXPECT_EQ(dfs.ReReplicate(), 0);
}

TEST(DfsFailureTest, ReReplicationTrafficMatchesLostBytes) {
  SimDfs dfs(ClusterOf(8, 2));
  ASSERT_TRUE(dfs.Write("/big", 8 * 1024, 3, nullptr).ok());  // 8 blocks
  const int64_t lost_blocks = dfs.KillNode(3);
  const int64_t copied = dfs.ReReplicate();
  EXPECT_EQ(copied, lost_blocks * 1024);
}

TEST(DfsFailureTest, ReReplicateCannotResurrectLostBlocks) {
  SimDfs dfs(ClusterOf(4, 1));
  ASSERT_TRUE(dfs.Write("/f", 100, 1, nullptr).ok());
  dfs.KillNode(1);
  EXPECT_EQ(dfs.ReReplicate(), 0);
  EXPECT_FALSE(dfs.Read("/f", 0).ok());
}

TEST(DfsFailureTest, WritesAfterFailureAvoidDeadNodes) {
  SimDfs dfs(ClusterOf(3, 3));
  dfs.KillNode(2);
  ASSERT_TRUE(dfs.Write("/f", 100, 0, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  // Replication capped at the 2 live nodes, dead node never chosen.
  for (const BlockInfo& block : info->blocks) {
    EXPECT_EQ(block.replicas.size(), 2u);
    for (int r : block.replicas) EXPECT_NE(r, 2);
  }
}

TEST(DfsFailureTest, CapacityDegradesGracefullyToOneNode) {
  SimDfs dfs(ClusterOf(3, 2));
  dfs.KillNode(0);
  dfs.KillNode(1);
  EXPECT_EQ(dfs.NumLiveNodes(), 1);
  ASSERT_TRUE(dfs.Write("/f", 100, 2, nullptr).ok());
  EXPECT_TRUE(dfs.Read("/f", 2).ok());
}

}  // namespace
}  // namespace cumulon
