// Property tests for the bounded-memory quantile sketch: the guaranteed
// rank-error bound must hold against the exact oracle on random AND
// adversarial streams, the sketch must stay exact until its first buffer
// collapse, and memory must stay capped regardless of stream length.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "obs/quantile_sketch.h"
#include "svc/loadgen.h"

namespace cumulon {
namespace {

// 1-based rank window: the position of `value` in the sorted stream must
// land within `slack` ranks of the target rank for quantile q.
void ExpectWithinRankError(const std::vector<double>& sorted, double q,
                           double value, double slack_ranks,
                           const char* what) {
  const int64_t n = static_cast<int64_t>(sorted.size());
  const int64_t target =
      std::clamp<int64_t>(static_cast<int64_t>(std::ceil(q * n)), 1, n);
  // All ranks the returned value could occupy (duplicates span a range).
  const auto lo_it = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi_it = std::upper_bound(sorted.begin(), sorted.end(), value);
  ASSERT_NE(lo_it, hi_it) << what << ": sketch returned a value not in the "
                          << "stream (q=" << q << ", value=" << value << ")";
  const int64_t lo_rank = (lo_it - sorted.begin()) + 1;
  const int64_t hi_rank = hi_it - sorted.begin();
  const int64_t distance =
      target < lo_rank ? lo_rank - target
                       : (target > hi_rank ? target - hi_rank : 0);
  EXPECT_LE(static_cast<double>(distance), slack_ranks)
      << what << ": q=" << q << " n=" << n << " value=" << value
      << " target rank=" << target << " value ranks=[" << lo_rank << ","
      << hi_rank << "]";
}

void CheckAgainstOracle(const std::vector<double>& stream, const char* what) {
  QuantileSketch sketch;
  for (double v : stream) sketch.Add(v);
  std::vector<double> sorted = stream;
  std::sort(sorted.begin(), sorted.end());

  ASSERT_EQ(sketch.count(), static_cast<int64_t>(stream.size()));
  EXPECT_EQ(sketch.min(), sorted.front()) << what << ": min is exact";
  EXPECT_EQ(sketch.max(), sorted.back()) << what << ": max is exact";

  const double bound = sketch.rank_error_bound();
  EXPECT_LT(bound, 0.05) << what
                         << ": default sketch bound should stay small";
  // +1 rank of slack for the discretization of ceil(q*n) at tiny q.
  const double slack = bound * static_cast<double>(sorted.size()) + 1.0;
  for (double q : {0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    ExpectWithinRankError(sorted, q, sketch.Quantile(q), slack, what);
  }
}

TEST(QuantileSketchTest, EmptySketchIsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
  EXPECT_EQ(sketch.rank_error_bound(), 0.0);
}

TEST(QuantileSketchTest, ExactUntilFirstCollapse) {
  // Exact for n < buffer_size * (max_buffers + 1): the first collapse
  // fires on the add that completes the (max_buffers + 1)-th buffer.
  QuantileSketch sketch(/*buffer_size=*/256, /*max_buffers=*/8);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> stream;
  for (int i = 0; i < 256 * 9 - 1; ++i) {
    const double v = dist(rng);
    stream.push_back(v);
    sketch.Add(v);
  }
  ASSERT_EQ(sketch.collapses(), 0);
  EXPECT_EQ(sketch.rank_error_bound(), 0.0);
  for (double q : {0.01, 0.25, 0.50, 0.75, 0.99}) {
    EXPECT_EQ(sketch.Quantile(q), ExactPercentile(stream, q))
        << "pre-collapse sketch must match the exact oracle at q=" << q;
  }
}

TEST(QuantileSketchTest, RandomStreamsRespectBound) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uniform(0.0, 1000.0);
  std::exponential_distribution<double> heavy_tail(0.02);
  std::vector<double> u, e;
  for (int i = 0; i < 50000; ++i) {
    u.push_back(uniform(rng));
    e.push_back(heavy_tail(rng));  // latency-shaped, like loadgen feeds it
  }
  CheckAgainstOracle(u, "uniform");
  CheckAgainstOracle(e, "exponential");
}

TEST(QuantileSketchTest, AdversarialStreamsRespectBound) {
  const int n = 40000;
  std::vector<double> ascending, descending, duplicates, alternating;
  for (int i = 0; i < n; ++i) {
    ascending.push_back(static_cast<double>(i));
    descending.push_back(static_cast<double>(n - i));
    duplicates.push_back(static_cast<double>(i % 3));
    // Extremes alternating with a slow ramp: collapse-order stress.
    alternating.push_back(i % 2 == 0 ? 1e9 + i : -1e9 - i);
  }
  CheckAgainstOracle(ascending, "sorted ascending");
  CheckAgainstOracle(descending, "sorted descending");
  CheckAgainstOracle(duplicates, "heavy duplicates");
  CheckAgainstOracle(alternating, "alternating extremes");
}

TEST(QuantileSketchTest, MergeComposesBounds) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  QuantileSketch a, b;
  std::vector<double> all;
  for (int i = 0; i < 30000; ++i) {
    const double va = dist(rng), vb = 2.0 + dist(rng);
    a.Add(va);
    b.Add(vb);
    all.push_back(va);
    all.push_back(vb);
  }
  a.Merge(b);
  ASSERT_EQ(a.count(), static_cast<int64_t>(all.size()));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(a.min(), all.front());
  EXPECT_EQ(a.max(), all.back());
  const double slack =
      a.rank_error_bound() * static_cast<double>(all.size()) + 1.0;
  for (double q : {0.05, 0.50, 0.95, 0.99}) {
    ExpectWithinRankError(all, q, a.Quantile(q), slack, "merged");
  }
}

TEST(QuantileSketchTest, MemoryStaysBoundedOnLongStreams) {
  QuantileSketch sketch;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  int64_t peak = 0;
  for (int i = 0; i < 500000; ++i) {
    sketch.Add(dist(rng));
    if ((i & 0xFFF) == 0) peak = std::max(peak, sketch.MemoryBytes());
  }
  peak = std::max(peak, sketch.MemoryBytes());
  // (max_buffers + 1) full buffers of doubles, with generous headroom for
  // vector bookkeeping — the point is: independent of the 500k count.
  EXPECT_LE(peak, 4 * (12 + 1) * 512 * static_cast<int64_t>(sizeof(double)));
  EXPECT_GT(sketch.collapses(), 0) << "a 500k stream must have collapsed";
  EXPECT_GT(sketch.rank_error_bound(), 0.0);
  EXPECT_LT(sketch.rank_error_bound(), 0.05);
}

// The loadgen contract: sketch p50/p99 within the published rank-error of
// the exact percentiles it replaced.
TEST(QuantileSketchTest, MatchesExactPercentileWithinBound) {
  std::mt19937_64 rng(17);
  std::lognormal_distribution<double> latency(-3.0, 0.8);
  std::vector<double> samples;
  QuantileSketch sketch;
  for (int i = 0; i < 80000; ++i) {
    const double v = latency(rng);
    samples.push_back(v);
    sketch.Add(v);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const int64_t n = static_cast<int64_t>(sorted.size());
  const auto rank_of = [&](double q) {
    return std::clamp<int64_t>(static_cast<int64_t>(std::ceil(q * n)), 1, n);
  };
  for (double q : {0.50, 0.99}) {
    const double exact = ExactPercentile(samples, q);
    const double approx = sketch.Quantile(q);
    // Convert the rank bound into a value window around the exact rank.
    const int64_t slack = static_cast<int64_t>(
        std::ceil(sketch.rank_error_bound() * static_cast<double>(n))) + 1;
    const int64_t r = rank_of(q);
    const double lo = sorted[static_cast<size_t>(std::max<int64_t>(r - slack, 1) - 1)];
    const double hi = sorted[static_cast<size_t>(std::min<int64_t>(r + slack, n) - 1)];
    EXPECT_GE(approx, lo) << "q=" << q << " exact=" << exact;
    EXPECT_LE(approx, hi) << "q=" << q << " exact=" << exact;
  }
}

}  // namespace
}  // namespace cumulon
