#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/calibration.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"
#include "opt/predictor.h"
#include "opt/search.h"

namespace cumulon {
namespace {

/// Full-stack real execution: program -> logical optimizer -> lowering ->
/// real engine over the simulated DFS (payloads + locality + byte
/// accounting all live).
TEST(IntegrationTest, RsvdOverDfsEndToEnd) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 3;
  dfs_options.replication = 2;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);

  RsvdSpec spec;
  spec.m = 32;
  spec.n = 24;
  spec.l = 4;
  Rng rng(5);
  DenseMatrix da = DenseMatrix::Gaussian(spec.m, spec.n, &rng);
  DenseMatrix domega = DenseMatrix::Gaussian(spec.n, spec.l, &rng);
  std::map<std::string, TiledMatrix> bindings;
  bindings.insert_or_assign(
      "A", TiledMatrix{"A", TileLayout::Square(spec.m, spec.n, 8)});
  bindings.insert_or_assign(
      "Omega", TiledMatrix{"Omega", TileLayout::Square(spec.n, spec.l, 8)});
  ASSERT_TRUE(StoreDense(da, bindings.at("A"), &store).ok());
  ASSERT_TRUE(StoreDense(domega, bindings.at("Omega"), &store).ok());

  LoweringOptions lowering;
  lowering.tile_dim = 8;
  auto lowered =
      Lower(OptimizeProgram(BuildRsvd1(spec)), bindings, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  ClusterConfig cluster{MachineProfile{}, 3, 2};
  RealEngine engine(cluster, RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  auto stats = executor.Run(lowered->plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto y = LoadDense(lowered->outputs.at("Y"), &store);
  ASSERT_TRUE(y.ok()) << y.status();
  auto expected = da.Multiply(*da.Transpose().Multiply(*da.Multiply(domega)));
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*y);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-6);

  // The DFS actually moved bytes for this run.
  EXPECT_GT(dfs.TotalStats().bytes_written, 0);
  EXPECT_GT(dfs.TotalStats().bytes_read(), 0);
}

/// The same lowered plan must produce identical numbers regardless of
/// multiply split parameters (physical knobs never change semantics).
TEST(IntegrationTest, SplitParametersDoNotChangeResults) {
  Rng rng(6);
  DenseMatrix da = DenseMatrix::Gaussian(32, 40, &rng);
  DenseMatrix db = DenseMatrix::Gaussian(40, 24, &rng);

  DenseMatrix reference(1, 1);
  bool have_reference = false;
  for (const MatMulParams params :
       {MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}, MatMulParams{1, 1, 2},
        MatMulParams{3, 2, 1}}) {
    InMemoryTileStore store;
    TiledMatrix a{"A", TileLayout::Square(32, 40, 8)};
    TiledMatrix b{"B", TileLayout::Square(40, 24, 8)};
    TiledMatrix c{"C", TileLayout::Square(32, 24, 8)};
    ASSERT_TRUE(StoreDense(da, a, &store).ok());
    ASSERT_TRUE(StoreDense(db, b, &store).ok());
    PhysicalPlan plan;
    ASSERT_TRUE(AddMatMul(a, b, c, params, {}, &plan).ok());
    RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                      RealEngineOptions{});
    TileOpCostModel cost;
    Executor executor(&store, &engine, &cost, ExecutorOptions{});
    ASSERT_TRUE(executor.Run(plan).ok());
    auto loaded = LoadDense(c, &store);
    ASSERT_TRUE(loaded.ok());
    if (!have_reference) {
      reference = *loaded;
      have_reference = true;
    } else {
      auto diff = reference.MaxAbsDiff(*loaded);
      ASSERT_TRUE(diff.ok());
      EXPECT_LT(diff.value(), 1e-10) << "params " << params.ToString();
    }
  }
}

/// Ablation A2 in miniature: disabling locality-aware scheduling makes
/// more reads remote in the simulated cluster.
TEST(IntegrationTest, LocalitySchedulingReducesRemoteTasks) {
  auto run_with = [](bool locality_aware) {
    DfsOptions dfs_options;
    dfs_options.num_nodes = 16;
    dfs_options.replication = 1;  // scarce replicas make locality matter
    dfs_options.seed = 3;
    SimDfs dfs(dfs_options);
    DfsTileStore store(&dfs);
    TiledMatrix a{"A", TileLayout::Square(16384, 16384, 1024)};
    TiledMatrix b{"B", TileLayout::Square(16384, 16384, 1024)};
    for (const TiledMatrix& m : {a, b}) {
      for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
        for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
          CUMULON_CHECK(store.PutMeta(m.name, TileId{r, c},
                                      16 + 1024 * 1024 * 8, -1).ok());
        }
      }
    }
    TiledMatrix c{"C", TileLayout::Square(16384, 16384, 1024)};
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{2, 2, 0}, {}, &plan).ok());
    SimEngineOptions sim;
    sim.locality_aware = locality_aware;
    SimEngine engine(ClusterConfig{MachineProfile{}, 16, 2}, sim);
    TileOpCostModel cost;
    ExecutorOptions exec_options;
    exec_options.real_mode = false;
    Executor executor(&store, &engine, &cost, exec_options);
    auto stats = executor.Run(plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    return stats->non_local_tasks;
  };
  EXPECT_LT(run_with(true), run_with(false));
}

/// Model-validation smoke (experiment E4's core loop): the simulator fed
/// with host-calibrated throughput predicts real single-threaded multiply
/// time within a loose factor.
TEST(IntegrationTest, PredictionWithinFactorOfRealExecution) {
  CalibrationOptions cal_options;
  cal_options.tile_dim = 128;
  auto calibration = Calibrate(cal_options);
  ASSERT_TRUE(calibration.ok());

  const int64_t dim = 512, tile = 128;
  InMemoryTileStore store;
  TiledMatrix a{"A", TileLayout::Square(dim, dim, tile)};
  TiledMatrix b{"B", TileLayout::Square(dim, dim, tile)};
  TiledMatrix c{"C", TileLayout::Square(dim, dim, tile)};
  Rng rng(7);
  ASSERT_TRUE(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
  ASSERT_TRUE(GenerateMatrix(b, FillKind::kGaussian, 0, &rng, &store).ok());

  // Real run on one worker thread.
  ClusterConfig host_cluster{calibration->ToHostProfile(1), 1, 1};
  RealEngine real(host_cluster, RealEngineOptions{});
  TileOpCostModel cost = calibration->ToCostModel();
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  Executor real_exec(&store, &real, &cost, exec_options);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
  auto real_stats = real_exec.Run(plan);
  ASSERT_TRUE(real_stats.ok());

  // Prediction: same cluster, no startup overhead, no IO cost (host
  // profile has effectively infinite bandwidth).
  SimEngineOptions sim;
  sim.task_startup_seconds = 0.0;
  sim.replication = 1;
  SimEngine sim_engine(host_cluster, sim);
  ExecutorOptions sim_exec_options;
  sim_exec_options.real_mode = false;
  sim_exec_options.job_startup_seconds = 0.0;
  InMemoryTileStore meta_store;
  Executor sim_exec(&meta_store, &sim_engine, &cost, sim_exec_options);
  PhysicalPlan sim_plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &sim_plan).ok());
  auto sim_stats = sim_exec.Run(sim_plan);
  ASSERT_TRUE(sim_stats.ok());

  const double real_time = real_stats->total_seconds;
  const double predicted = sim_stats->total_seconds;
  EXPECT_GT(predicted, 0.0);
  EXPECT_GT(real_time, 0.0);
  // Loose sanity bound: within 4x either way (CI machines are noisy; the
  // bench reports the tight number).
  EXPECT_LT(predicted / real_time, 4.0);
  EXPECT_LT(real_time / predicted, 4.0);
}

/// The optimizer must prefer cheaper clusters when deadlines relax
/// (the core claim of deployment optimization).
TEST(IntegrationTest, DeadlineDrivenPlanSelection) {
  RsvdSpec rsvd;
  rsvd.m = 16384;
  rsvd.n = 8192;
  rsvd.l = 64;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildRsvd1(rsvd));
  spec.inputs = {
      {"A", TileLayout::Square(rsvd.m, rsvd.n, 1024)},
      {"Omega", TileLayout::Square(rsvd.n, rsvd.l, 1024)},
  };
  SearchSpace space;
  space.machine_types = {"m1.small", "m1.large", "c1.xlarge"};
  space.cluster_sizes = {1, 4, 16};
  space.slots_per_machine = {2};
  space.mm_candidates = {MatMulParams{1, 1, 0}};
  PredictorOptions options;
  options.lowering.tile_dim = 1024;
  options.billing.quantum_seconds = 1.0;  // smooth cost for this check
  auto points = EnumeratePlans(spec, space, options);
  ASSERT_TRUE(points.ok()) << points.status();
  ASSERT_FALSE(points->empty());

  const double fastest = points->front().seconds;
  auto urgent = MinCostUnderDeadline(*points, fastest * 1.001);
  auto relaxed = MinCostUnderDeadline(*points, points->back().seconds * 2);
  ASSERT_TRUE(urgent.ok() && relaxed.ok());
  EXPECT_LE(relaxed->dollars, urgent->dollars);
  EXPECT_GE(relaxed->seconds, urgent->seconds);
}

}  // namespace
}  // namespace cumulon
