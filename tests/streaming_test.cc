// Out-of-core streaming execution: plans whose working sets exceed the
// per-node memory budget must spill panels, stay under the ledger cap,
// and still produce outputs bit-identical to the unbudgeted resident run
// — over the full job mix (split-k matmul + epilogue, ew chain,
// aggregate, transpose) at several budget settings. Plus the ReduceMode
// resolution contract, the opt-in fast reductions' tolerance, and the
// panel-partial aggregate building blocks.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/kernel_config.h"
#include "matrix/tile_ops.h"
#include "matrix/tile_store.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

constexpr int64_t kTile = 64;
constexpr int64_t kTileMem = kTile * kTile * 8;  // aligned footprint

DfsOptions SlowDfs(double latency_seconds) {
  DfsOptions o;
  o.num_nodes = 4;
  o.replication = 2;
  o.read_latency_seconds = latency_seconds;
  return o;
}

struct PipelineOutputs {
  TiledMatrix c{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix ew{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix agg{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix t{"", TileLayout::Square(1, 1, 1)};
};

/// The prefetch_test pipeline (every job type) run under a per-node memory
/// budget. budget_bytes <= 0 = unbudgeted resident baseline. With work
/// stealing each stolen split opens its own reader (no cross-unit reuse);
/// the classic path keeps one task-wide reader whose memoized panels are
/// re-read across output tiles — the pattern that produces re-fetches.
Status RunBudgetedPlan(int64_t budget_bytes, uint64_t seed,
                       DfsTileStore* store, PipelineOutputs* out,
                       PlanStats* stats_out, bool work_stealing = true,
                       MatMulParams mm_params = MatMulParams{1, 1, 1}) {
  const int64_t n = 128 + 64 * (seed % 2);  // vary shape across seeds
  TiledMatrix a{"A", TileLayout::Square(n, n, kTile)};
  TiledMatrix b{"B", TileLayout::Square(n, n, kTile)};
  TiledMatrix v{"V", TileLayout(1, n, 1, kTile)};
  TiledMatrix c{"C", TileLayout::Square(n, n, kTile)};
  TiledMatrix ew{"EW", TileLayout::Square(n, n, kTile)};
  TiledMatrix agg{"AGG", TileLayout(n, 1, kTile, 1)};
  TiledMatrix t{"T", TileLayout::Square(n, n, kTile)};
  Rng rng(seed);  // identical inputs for every budget
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(a, FillKind::kGaussian, 0, &rng, store));
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(b, FillKind::kGaussian, 0, &rng, store));
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(v, FillKind::kGaussian, 0, &rng, store));

  store->EnablePrefetch(3);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngine engine(cluster, RealEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  exec_options.prefetch_budget_bytes = 2 * kTileMem;
  exec_options.memory_budget_bytes = budget_bytes;
  exec_options.enable_work_stealing = work_stealing;
  Executor executor(store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  std::vector<EwStep> epilogue = {
      EwStep::Unary(UnaryOp::kScale, 0.5),
      EwStep::Binary(BinaryOp::kAdd, "V", false, EwStep::Operand::kRowVector)};
  CUMULON_RETURN_IF_ERROR(AddMatMul(a, b, c, mm_params, epilogue, &plan));
  CUMULON_RETURN_IF_ERROR(AddEwChain(
      c, ew, {EwStep::Unary(UnaryOp::kSigmoid),
              EwStep::Binary(BinaryOp::kMul, "A", false,
                             EwStep::Operand::kFull)},
      &plan, /*tiles_per_task=*/3));
  CUMULON_RETURN_IF_ERROR(AddAggregate(
      ew, agg, AggKind::kRowSums, {EwStep::Unary(UnaryOp::kScale, 1.0 / n)},
      &plan));
  CUMULON_RETURN_IF_ERROR(AddTranspose(ew, t, &plan, /*tiles_per_task=*/3));
  CUMULON_ASSIGN_OR_RETURN(*stats_out, executor.Run(plan));
  out->c = c;
  out->ew = ew;
  out->agg = agg;
  out->t = t;
  return Status::OK();
}

void ExpectBitIdentical(const TiledMatrix& m, DfsTileStore* baseline,
                        DfsTileStore* budgeted, int64_t budget) {
  const TileLayout& L = m.layout;
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      auto a = baseline->Get(m.name, TileId{gr, gc}, -1);
      auto b = budgeted->Get(m.name, TileId{gr, gc}, -1);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_EQ((*a)->size(), (*b)->size());
      for (int64_t i = 0; i < (*a)->size(); ++i) {
        ASSERT_EQ((*a)->data()[i], (*b)->data()[i])
            << m.name << " tile (" << gr << "," << gc
            << ") differs at element " << i << " under budget " << budget;
      }
    }
  }
}

class StreamingFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingFuzzTest, BudgetedRunsBitIdenticalToResidentBaseline) {
  const uint64_t seed = GetParam();
  SimDfs dfs_base(SlowDfs(0.001));
  DfsTileStore store_base(&dfs_base, /*verify_checksums=*/true);
  PipelineOutputs out_base;
  PlanStats stats_base;
  auto st = RunBudgetedPlan(0, seed, &store_base, &out_base, &stats_base);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(stats_base.spill_evictions, 0);
  EXPECT_EQ(stats_base.memory_peak_bytes, 0) << "unbudgeted: no ledger";

  // Tight (3 pinned tiles per slot — far below the matmul working set),
  // medium, and roomy budgets. 2 slots per machine, no tile cache, so a
  // budget of B gives each slot B/2 of pin room.
  const int64_t budgets[] = {6 * kTileMem, 16 * kTileMem, 1 << 22};
  for (int64_t budget : budgets) {
    SimDfs dfs(SlowDfs(0.001));
    DfsTileStore store(&dfs, /*verify_checksums=*/true);
    PipelineOutputs out;
    PlanStats stats;
    auto st_b = RunBudgetedPlan(budget, seed, &store, &out, &stats);
    ASSERT_TRUE(st_b.ok()) << st_b << " (budget " << budget << ")";

    ExpectBitIdentical(out_base.c, &store_base, &store, budget);
    ExpectBitIdentical(out_base.ew, &store_base, &store, budget);
    ExpectBitIdentical(out_base.agg, &store_base, &store, budget);
    ExpectBitIdentical(out_base.t, &store_base, &store, budget);

    // The ledger's hard cap held on every node.
    EXPECT_GT(stats.memory_peak_bytes, 0) << "budget " << budget;
    EXPECT_LE(stats.memory_peak_bytes, budget) << "budget " << budget;
  }

  // Re-fetch check. Tasks must revisit tiles for a re-fetch to exist at
  // all, so use 2x2 output blocks with a full-k fold (each A panel is
  // reused across the block's j range) and the classic task-wide reader
  // (work stealing off — stolen splits each open a fresh reader and never
  // revisit a spilled panel). The different fold order changes the FP
  // addition sequence, so this run gets its own unbudgeted baseline.
  const MatMulParams blocked{2, 2, 0};
  SimDfs dfs_rbase(SlowDfs(0.001)), dfs_tight(SlowDfs(0.001));
  DfsTileStore store_rbase(&dfs_rbase, /*verify_checksums=*/true);
  DfsTileStore store_tight(&dfs_tight, /*verify_checksums=*/true);
  PipelineOutputs out_rbase, out_tight;
  PlanStats stats_rbase, stats_tight;
  auto st_rbase = RunBudgetedPlan(0, seed, &store_rbase, &out_rbase,
                                  &stats_rbase, /*work_stealing=*/false,
                                  blocked);
  ASSERT_TRUE(st_rbase.ok()) << st_rbase;
  auto st_tight = RunBudgetedPlan(6 * kTileMem, seed, &store_tight,
                                  &out_tight, &stats_tight,
                                  /*work_stealing=*/false, blocked);
  ASSERT_TRUE(st_tight.ok()) << st_tight;
  ExpectBitIdentical(out_rbase.c, &store_rbase, &store_tight, 6 * kTileMem);
  ExpectBitIdentical(out_rbase.ew, &store_rbase, &store_tight, 6 * kTileMem);
  ExpectBitIdentical(out_rbase.agg, &store_rbase, &store_tight,
                     6 * kTileMem);
  ExpectBitIdentical(out_rbase.t, &store_rbase, &store_tight, 6 * kTileMem);
  EXPECT_GT(stats_tight.spill_evictions, 0);
  EXPECT_GT(stats_tight.spill_evicted_bytes, 0);
  EXPECT_GT(stats_tight.spill_refetches, 0)
      << "split-k matmul re-reads evicted operand panels";
  EXPECT_EQ(stats_tight.metrics.counters.count("exec.spill.evictions"), 1u);
  EXPECT_EQ(stats_tight.metrics.counters.at("exec.spill.evictions"),
            stats_tight.spill_evictions);
  EXPECT_EQ(stats_tight.metrics.counters.at("exec.spill.refetch_bytes"),
            stats_tight.spill_refetch_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingFuzzTest,
                         ::testing::Range<uint64_t>(1, 4));

TEST(StreamingExecutorTest, BudgetBelowCacheReserveIsInvalidArgument) {
  InMemoryTileStore store;
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  RealEngineOptions engine_options;
  engine_options.enable_tile_cache = true;
  engine_options.cache_bytes_per_node = 1 << 20;
  RealEngine engine(cluster, engine_options);
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.memory_budget_bytes = 1 << 20;  // == cache reservation
  Executor executor(&store, &engine, &cost, exec_options);
  PhysicalPlan plan;
  auto result = executor.Run(plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingExecutorTest, BudgetAboveCacheReserveRuns) {
  InMemoryTileStore store;
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  RealEngineOptions engine_options;
  engine_options.enable_tile_cache = true;
  engine_options.cache_bytes_per_node = 1 << 16;
  RealEngine engine(cluster, engine_options);
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.memory_budget_bytes = 1 << 20;
  Executor executor(&store, &engine, &cost, exec_options);
  PhysicalPlan plan;  // empty plan: the budget checks still run
  auto result = executor.Run(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  // The cache's standing reservation is the ledger floor.
  EXPECT_GE(result.value().memory_peak_bytes, 1 << 16);
  EXPECT_LE(result.value().memory_peak_bytes, 1 << 20);
}

// ---------------------------------------------------------------------------
// ReduceMode resolution (pure logic; the env override is passed in).
// ---------------------------------------------------------------------------

TEST(ReduceModeTest, ResolutionContract) {
  using RM = ReduceMode;
  // Opt-in only: kAuto stays ordered unless the env says fast.
  EXPECT_EQ(ResolveReduceModeWith(RM::kAuto, nullptr), RM::kOrdered);
  EXPECT_EQ(ResolveReduceModeWith(RM::kAuto, ""), RM::kOrdered);
  EXPECT_EQ(ResolveReduceModeWith(RM::kAuto, "banana"), RM::kOrdered);
  EXPECT_EQ(ResolveReduceModeWith(RM::kAuto, "fast"), RM::kFast);
  // Explicit kOrdered always wins.
  EXPECT_EQ(ResolveReduceModeWith(RM::kOrdered, "fast"), RM::kOrdered);
  // Explicit kFast is honored unless the env forces ordered (CI lane).
  EXPECT_EQ(ResolveReduceModeWith(RM::kFast, nullptr), RM::kFast);
  EXPECT_EQ(ResolveReduceModeWith(RM::kFast, "ordered"), RM::kOrdered);
  EXPECT_EQ(ResolveReduceModeWith(RM::kAuto, "ordered"), RM::kOrdered);
}

TEST(ReduceModeTest, ParseAndName) {
  ReduceMode mode = ReduceMode::kAuto;
  EXPECT_TRUE(ParseReduceMode("ordered", &mode));
  EXPECT_EQ(mode, ReduceMode::kOrdered);
  EXPECT_TRUE(ParseReduceMode("fast", &mode));
  EXPECT_EQ(mode, ReduceMode::kFast);
  EXPECT_TRUE(ParseReduceMode("auto", &mode));
  EXPECT_EQ(mode, ReduceMode::kAuto);
  EXPECT_FALSE(ParseReduceMode("FAST", &mode)) << "case-sensitive";
  EXPECT_EQ(mode, ReduceMode::kAuto) << "failed parse leaves *out alone";
  EXPECT_STREQ(ReduceModeName(ReduceMode::kFast), "fast");
}

// ---------------------------------------------------------------------------
// Fast reductions: reassociated, so tolerance-equal — never bit-required.
// ---------------------------------------------------------------------------

Tile GaussianTile(int64_t rows, int64_t cols, uint64_t seed) {
  Tile t(rows, cols);
  Rng rng(seed);
  FillGaussian(&t, &rng);
  return t;
}

TEST(FastReduceTest, TileSumWithinTolerance) {
  const Tile t = GaussianTile(64, 64, 11);
  const double ordered = TileSumWithMode(ReduceMode::kOrdered, t);
  const double fast = TileSumWithMode(ReduceMode::kFast, t);
  EXPECT_NEAR(fast, ordered, 1e-9 * (1.0 + std::abs(ordered)));
  // Ragged edge: the unroll tail must cover every element.
  const Tile odd = GaussianTile(7, 13, 12);
  EXPECT_NEAR(TileSumWithMode(ReduceMode::kFast, odd),
              TileSumWithMode(ReduceMode::kOrdered, odd), 1e-12);
}

TEST(FastReduceTest, RowSumsWithinTolerance) {
  const Tile t = GaussianTile(64, 64, 13);
  Tile ordered(64, 1), fast(64, 1);
  FillTile(&ordered, 0.0);
  FillTile(&fast, 0.0);
  ASSERT_TRUE(RowSumsIntoWithMode(ReduceMode::kOrdered, t, &ordered).ok());
  ASSERT_TRUE(RowSumsIntoWithMode(ReduceMode::kFast, t, &fast).ok());
  for (int64_t r = 0; r < 64; ++r) {
    EXPECT_NEAR(fast.At(r, 0), ordered.At(r, 0),
                1e-9 * (1.0 + std::abs(ordered.At(r, 0))))
        << "row " << r;
  }
}

TEST(FastReduceTest, FrobeniusNormWithinTolerance) {
  const Tile t = GaussianTile(33, 65, 14);
  const double ordered = FrobeniusNormWithMode(ReduceMode::kOrdered, t);
  const double fast = FrobeniusNormWithMode(ReduceMode::kFast, t);
  EXPECT_NEAR(fast, ordered, 1e-9 * (1.0 + ordered));
  EXPECT_GT(fast, 0.0);
}

TEST(FastReduceTest, DefaultEntryPointsStayOnTheOracle) {
  // TileSum / RowSumsInto / FrobeniusNorm resolve kAuto; without a
  // CUMULON_REDUCE=fast override they must equal the ordered oracle
  // bit-for-bit. (The CI fast lane sets the env and exercises the other
  // branch; this guards the default.)
  if (ResolveReduceMode(ReduceMode::kAuto) != ReduceMode::kOrdered) {
    GTEST_SKIP() << "CUMULON_REDUCE=fast is set for this process";
  }
  const Tile t = GaussianTile(48, 48, 15);
  EXPECT_EQ(TileSum(t), TileSumWithMode(ReduceMode::kOrdered, t));
  EXPECT_EQ(FrobeniusNorm(t), FrobeniusNormWithMode(ReduceMode::kOrdered, t));
}

// ---------------------------------------------------------------------------
// Panel-partial aggregates: the streamed aggregate's building blocks.
// ---------------------------------------------------------------------------

TEST(AggPanelTest, OnePanelMatchesFlatFold) {
  // Up to kAggPanelTiles tiles form a single panel; its partial combined
  // into a zero accumulator must be bit-equal to the flat per-tile fold
  // (so small matrices see no change from panel streaming).
  std::vector<Tile> tiles;
  for (int i = 0; i < static_cast<int>(kAggPanelTiles); ++i) {
    tiles.push_back(GaussianTile(16, 16, 100 + i));
  }
  Tile flat(16, 1), panel(16, 1), partial(16, 1);
  FillTile(&flat, 0.0);
  FillTile(&panel, 0.0);
  FillTile(&partial, 0.0);
  for (const Tile& t : tiles) {
    ASSERT_TRUE(RowSumsInto(t, &flat).ok());
    ASSERT_TRUE(RowSumsPartialInto(t, &partial).ok());
  }
  ASSERT_TRUE(CombineAggPartial(partial, &panel).ok());
  for (int64_t r = 0; r < 16; ++r) {
    ASSERT_EQ(panel.At(r, 0), flat.At(r, 0)) << "row " << r;
  }
}

TEST(AggPanelTest, PanelDecompositionIsDeterministicAndCorrect) {
  // 20 tiles = 3 panels of the fixed width. The decomposition must be
  // reproducible run to run (bit-identity across budgets relies on the
  // panel width being a constant) and sum-correct within tolerance.
  const int kTiles = 20;
  auto run = [&] {
    Tile acc(8, 1);
    FillTile(&acc, 0.0);
    for (int x0 = 0; x0 < kTiles;
         x0 += static_cast<int>(kAggPanelTiles)) {
      Tile partial(8, 1);
      FillTile(&partial, 0.0);
      const int x1 =
          std::min(x0 + static_cast<int>(kAggPanelTiles), kTiles);
      for (int x = x0; x < x1; ++x) {
        const Tile t = GaussianTile(8, 8, 500 + x);
        EXPECT_TRUE(RowSumsPartialInto(t, &partial).ok());
      }
      EXPECT_TRUE(CombineAggPartial(partial, &acc).ok());
    }
    return acc;
  };
  const Tile first = run();
  const Tile second = run();
  double naive0 = 0.0;
  for (int x = 0; x < kTiles; ++x) {
    const Tile t = GaussianTile(8, 8, 500 + x);
    for (int64_t c = 0; c < 8; ++c) naive0 += t.At(0, c);
  }
  for (int64_t r = 0; r < 8; ++r) {
    ASSERT_EQ(first.At(r, 0), second.At(r, 0)) << "row " << r;
  }
  EXPECT_NEAR(first.At(0, 0), naive0, 1e-9 * (1.0 + std::abs(naive0)));
}

}  // namespace
}  // namespace cumulon
