#include <gtest/gtest.h>

#include "cloud/machine.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"

namespace cumulon {
namespace {

TEST(CostModelTest, GemmSecondsMatchesFlopFormula) {
  TileOpCostModel model;
  model.per_tile_overhead_seconds = 0.0;
  // 2 * 100 * 200 * 50 flops at 1 GFLOP/s.
  EXPECT_DOUBLE_EQ(model.GemmSeconds(100, 200, 50), 2.0e6 / 1e9);
}

TEST(CostModelTest, OverheadDominatesTinyTiles) {
  TileOpCostModel model;
  model.per_tile_overhead_seconds = 1e-3;
  EXPECT_GT(model.GemmSeconds(1, 1, 1), 1e-3);
  EXPECT_LT(model.GemmSeconds(1, 1, 1), 1.1e-3);
}

TEST(CostModelTest, EwAndTransposeScaleLinearly) {
  TileOpCostModel model;
  model.per_tile_overhead_seconds = 0.0;
  EXPECT_DOUBLE_EQ(model.EwSeconds(2'000'000), 2.0 * model.EwSeconds(1'000'000));
  EXPECT_DOUBLE_EQ(model.TransposeSeconds(3'000'000),
                   3.0 * model.TransposeSeconds(1'000'000));
}

TEST(CostModelTest, AccumulateCostsLikeElementwise) {
  TileOpCostModel model;
  EXPECT_DOUBLE_EQ(model.AccumulateSeconds(12345), model.EwSeconds(12345));
}

TEST(CalibrationTest, MeasuresPositiveThroughputs) {
  CalibrationOptions options;
  options.tile_dim = 128;  // keep the probe fast
  options.repetitions = 2;
  auto result = Calibrate(options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->gemm_gflops, 0.0);
  EXPECT_GT(result->ew_gelems, 0.0);
  EXPECT_GT(result->transpose_gelems, 0.0);
}

TEST(CalibrationTest, RejectsDegenerateOptions) {
  CalibrationOptions options;
  options.tile_dim = 4;
  EXPECT_FALSE(Calibrate(options).ok());
  options.tile_dim = 64;
  options.repetitions = 0;
  EXPECT_FALSE(Calibrate(options).ok());
}

TEST(CalibrationTest, ToCostModelPreservesRatios) {
  CalibrationResult r;
  r.gemm_gflops = 4.0;
  r.ew_gelems = 1.0;
  r.transpose_gelems = 0.5;
  TileOpCostModel model = r.ToCostModel();
  EXPECT_DOUBLE_EQ(model.ew_gelems_per_sec, 0.25);
  EXPECT_DOUBLE_EQ(model.transpose_gelems_per_sec, 0.125);
}

TEST(CalibrationTest, ToHostProfileUsesMeasuredGflops) {
  CalibrationResult r;
  r.gemm_gflops = 3.5;
  MachineProfile host = r.ToHostProfile(4);
  EXPECT_EQ(host.cores, 4);
  EXPECT_DOUBLE_EQ(host.cpu_gflops, 3.5);
  EXPECT_EQ(host.price_per_hour, 0.0);
}

// ---------------------------------------------------------------------------
// Machine catalog & pricing
// ---------------------------------------------------------------------------

TEST(MachineCatalogTest, ContainsExpectedFamilies) {
  const auto& catalog = MachineCatalog();
  EXPECT_GE(catalog.size(), 4u);
  EXPECT_TRUE(FindMachine("m1.small").ok());
  EXPECT_TRUE(FindMachine("c1.xlarge").ok());
  EXPECT_EQ(FindMachine("nonexistent").status().code(),
            StatusCode::kNotFound);
}

TEST(MachineCatalogTest, PricesIncreaseWithSize) {
  auto small = FindMachine("m1.small");
  auto xlarge = FindMachine("m1.xlarge");
  ASSERT_TRUE(small.ok() && xlarge.ok());
  EXPECT_LT(small->price_per_hour, xlarge->price_per_hour);
  EXPECT_LT(small->cores, xlarge->cores);
}

TEST(MachineCatalogTest, HighCpuFamilyHasBetterComputePerDollar) {
  auto m1 = FindMachine("m1.xlarge");
  auto c1 = FindMachine("c1.xlarge");
  ASSERT_TRUE(m1.ok() && c1.ok());
  const double m1_gflops_per_dollar =
      m1->cores * m1->cpu_gflops / m1->price_per_hour;
  const double c1_gflops_per_dollar =
      c1->cores * c1->cpu_gflops / c1->price_per_hour;
  EXPECT_GT(c1_gflops_per_dollar, m1_gflops_per_dollar);
}

TEST(PricingTest, HourlyQuantumRoundsUp) {
  MachineProfile m;
  m.price_per_hour = 1.0;
  BillingPolicy hourly;  // 3600 s quantum
  EXPECT_DOUBLE_EQ(ClusterDollarCost(m, 1, 1.0, hourly), 1.0);
  EXPECT_DOUBLE_EQ(ClusterDollarCost(m, 1, 3600.0, hourly), 1.0);
  EXPECT_DOUBLE_EQ(ClusterDollarCost(m, 1, 3601.0, hourly), 2.0);
  EXPECT_DOUBLE_EQ(ClusterDollarCost(m, 4, 1800.0, hourly), 4.0);
}

TEST(PricingTest, PerSecondBillingIsProportional) {
  MachineProfile m;
  m.price_per_hour = 3.6;
  BillingPolicy per_second;
  per_second.quantum_seconds = 1.0;
  EXPECT_NEAR(ClusterDollarCost(m, 1, 1000.0, per_second), 1.0, 1e-9);
  EXPECT_NEAR(ClusterDollarCost(m, 2, 500.0, per_second), 1.0, 1e-9);
}

TEST(PricingTest, MinimumChargeApplies) {
  MachineProfile m;
  m.price_per_hour = 1.0;
  BillingPolicy policy;
  policy.quantum_seconds = 1.0;
  policy.minimum_seconds = 60.0;
  EXPECT_NEAR(ClusterDollarCost(m, 1, 5.0, policy), 60.0 / 3600.0, 1e-12);
}

}  // namespace
}  // namespace cumulon
