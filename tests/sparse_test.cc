#include <tuple>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "dfs/sparse_tile_store.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "exec/sparse_matmul_job.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_tile.h"
#include "matrix/tile_ops.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

TEST(SparseTileTest, EmptyTileHasNoNonzeros) {
  SparseTile t(5, 7);
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_EQ(t.density(), 0.0);
  Tile dense = t.ToDense();
  EXPECT_EQ(FrobeniusNorm(dense), 0.0);
}

TEST(SparseTileTest, FromDenseToDenseRoundTrip) {
  Rng rng(101);
  Tile dense(9, 11);
  FillGaussian(&dense, &rng);
  // Zero out some entries.
  for (int64_t r = 0; r < 9; ++r) dense.Set(r, r % 11, 0.0);
  SparseTile sparse = SparseTile::FromDense(dense);
  EXPECT_LT(sparse.nnz(), 9 * 11);
  auto diff = MaxAbsDiff(dense, sparse.ToDense());
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), 0.0);
}

TEST(SparseTileTest, ZeroToleranceDropsSmallEntries) {
  Tile dense(2, 2);
  dense.Set(0, 0, 1e-12);
  dense.Set(1, 1, 1.0);
  SparseTile sparse = SparseTile::FromDense(dense, 1e-9);
  EXPECT_EQ(sparse.nnz(), 1);
}

TEST(SparseTileTest, RandomDensityIsApproximatelyRequested) {
  Rng rng(102);
  SparseTile sparse = SparseTile::Random(200, 200, 0.1, &rng);
  EXPECT_NEAR(sparse.density(), 0.1, 0.02);
}

TEST(SparseTileTest, SizeBytesBeatsDenseAtLowDensity) {
  Rng rng(103);
  SparseTile sparse = SparseTile::Random(256, 256, 0.05, &rng);
  Tile dense(256, 256);
  EXPECT_LT(sparse.SizeBytes(), dense.SizeBytes());
  // CSR loses at high density (16 bytes/nnz vs 8 bytes/element).
  SparseTile full = SparseTile::Random(64, 64, 0.99, &rng);
  Tile full_dense(64, 64);
  EXPECT_GT(full.SizeBytes(), full_dense.SizeBytes());
}

class SpmmTest
    : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(SpmmTest, MatchesDenseGemm) {
  const auto [density, n] = GetParam();
  Rng rng(104);
  SparseTile s = SparseTile::Random(37, 23, density, &rng);
  Tile d(23, n);
  FillGaussian(&d, &rng);

  Tile expected(37, n);
  Tile s_dense = s.ToDense();
  ASSERT_TRUE(Gemm(s_dense, d, 1.0, 0.0, &expected).ok());

  Tile c(37, n);
  ASSERT_TRUE(SparseTile::SpMM(s, d, 1.0, 0.0, &c).ok());
  auto diff = MaxAbsDiff(expected, c);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Densities, SpmmTest,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.2, 1.0),
                       ::testing::Values(1, 8, 31)));

TEST(SpmmTest, AlphaBetaSemantics) {
  Rng rng(105);
  SparseTile s = SparseTile::Random(6, 6, 0.5, &rng);
  Tile d(6, 4);
  FillGaussian(&d, &rng);
  Tile c(6, 4);
  FillTile(&c, 2.0);
  ASSERT_TRUE(SparseTile::SpMM(s, d, 3.0, 0.5, &c).ok());
  Tile expected(6, 4);
  FillTile(&expected, 2.0);
  Tile s_dense = s.ToDense();
  ASSERT_TRUE(Gemm(s_dense, d, 3.0, 0.5, &expected).ok());
  auto diff = MaxAbsDiff(expected, c);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

TEST(SpmmTest, RejectsShapeMismatch) {
  SparseTile s(3, 4);
  Tile d(5, 2), c(3, 2);
  EXPECT_FALSE(SparseTile::SpMM(s, d, 1.0, 0.0, &c).ok());
}

TEST(SparseTileTest, RowSumsMatchDense) {
  Rng rng(106);
  SparseTile s = SparseTile::Random(12, 9, 0.3, &rng);
  Tile sparse_sums(12, 1), dense_sums(12, 1);
  ASSERT_TRUE(s.RowSumsInto(&sparse_sums).ok());
  Tile dense = s.ToDense();
  ASSERT_TRUE(RowSumsInto(dense, &dense_sums).ok());
  auto diff = MaxAbsDiff(sparse_sums, dense_sums);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

TEST(SparseCostTest, SpmmCheaperThanGemmAtLowDensity) {
  TileOpCostModel model;
  const int64_t dim = 1024;
  const int64_t nnz = dim * dim / 100;  // 1% dense
  EXPECT_LT(model.SpmmSeconds(nnz, dim), model.GemmSeconds(dim, dim, dim));
  // At full density the efficiency discount makes SpMM lose.
  EXPECT_GT(model.SpmmSeconds(dim * dim, dim),
            model.GemmSeconds(dim, dim, dim));
}

TEST(SparseTileTest, SpmmFlopsCountsNnz) {
  Rng rng(107);
  SparseTile s = SparseTile::Random(50, 50, 0.2, &rng);
  EXPECT_DOUBLE_EQ(s.SpmmFlops(10), 2.0 * s.nnz() * 10);
}

// ---------------------------------------------------------------------------
// SparseTileStore
// ---------------------------------------------------------------------------

TEST(SparseTileStoreTest, PutGetRoundTripWithCsrFootprint) {
  SimDfs dfs(DfsOptions{});
  SparseTileStore store(&dfs);
  Rng rng(108);
  auto tile =
      std::make_shared<SparseTile>(SparseTile::Random(16, 16, 0.1, &rng));
  const int64_t bytes = tile->SizeBytes();
  ASSERT_TRUE(store.Put("S", TileId{0, 0}, tile, 0).ok());
  EXPECT_EQ(dfs.TotalStats().bytes_written, bytes);
  auto got = store.Get("S", TileId{0, 0}, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->nnz(), tile->nnz());
  EXPECT_FALSE(store.PreferredNodes("S", TileId{0, 0}).empty());
  ASSERT_TRUE(store.DeleteMatrix("S").ok());
  EXPECT_FALSE(store.Get("S", TileId{0, 0}, 0).ok());
}

// ---------------------------------------------------------------------------
// SparseMatMulJob
// ---------------------------------------------------------------------------

class SparseJobTest : public ::testing::Test {
 protected:
  SparseJobTest()
      : dfs_(DfsOptions{}),
        sparse_store_(&dfs_),
        dense_store_(&dfs_),
        engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&dense_store_, &engine_, &cost_, ExecutorOptions{}) {}

  /// Stores a sparse matrix tile-by-tile; returns the dense equivalent.
  DenseMatrix MakeSparseInput(const TiledMatrix& m, double density) {
    DenseMatrix dense(m.layout.rows(), m.layout.cols());
    for (int64_t gr = 0; gr < m.layout.grid_rows(); ++gr) {
      for (int64_t gc = 0; gc < m.layout.grid_cols(); ++gc) {
        auto tile = std::make_shared<SparseTile>(
            SparseTile::Random(m.layout.TileRowsAt(gr),
                               m.layout.TileColsAt(gc), density, &rng_));
        Tile as_dense = tile->ToDense();
        const int64_t r0 = gr * m.layout.tile_rows();
        const int64_t c0 = gc * m.layout.tile_cols();
        for (int64_t r = 0; r < as_dense.rows(); ++r) {
          for (int64_t c = 0; c < as_dense.cols(); ++c) {
            dense.Set(r0 + r, c0 + c, as_dense.At(r, c));
          }
        }
        CUMULON_CHECK(
            sparse_store_.Put(m.name, TileId{gr, gc}, tile, -1).ok());
      }
    }
    return dense;
  }

  Rng rng_{109};
  SimDfs dfs_;
  SparseTileStore sparse_store_;
  DfsTileStore dense_store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
};

TEST_F(SparseJobTest, RealModeMatchesDenseReference) {
  TiledMatrix s{"S", TileLayout::Square(32, 24, 8)};
  TiledMatrix b{"B", TileLayout::Square(24, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(32, 16, 8)};
  DenseMatrix ds = MakeSparseInput(s, 0.2);
  DenseMatrix db = DenseMatrix::Gaussian(24, 16, &rng_);
  ASSERT_TRUE(StoreDense(db, b, &dense_store_).ok());

  PhysicalPlan plan;
  plan.jobs.push_back(std::make_unique<SparseMatMulJob>(
      "spmm", &sparse_store_, s, 0.2, b, c, /*tiles_per_task=*/2));
  auto stats = executor_.Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto loaded = LoadDense(c, &dense_store_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto expected = ds.Multiply(db);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

TEST_F(SparseJobTest, RejectsBadShapesAndDensity) {
  TiledMatrix s{"S", TileLayout::Square(32, 24, 8)};
  TiledMatrix b_bad{"B", TileLayout::Square(25, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(32, 16, 8)};
  BuildContext ctx{&dense_store_, &cost_, false, false};
  SparseMatMulJob bad_shape("j", &sparse_store_, s, 0.2, b_bad, c);
  EXPECT_FALSE(bad_shape.Build(ctx).ok());
  TiledMatrix b{"B", TileLayout::Square(24, 16, 8)};
  SparseMatMulJob bad_density("j", &sparse_store_, s, 1.5, b, c);
  EXPECT_FALSE(bad_density.Build(ctx).ok());
}

TEST_F(SparseJobTest, SimCostsShrinkWithDensity) {
  TiledMatrix s{"S", TileLayout::Square(8192, 8192, 1024)};
  TiledMatrix b{"B", TileLayout::Square(8192, 8192, 1024)};
  TiledMatrix c{"C", TileLayout::Square(8192, 8192, 1024)};
  BuildContext ctx{&dense_store_, &cost_, false, false};

  auto totals = [&](double density) {
    SparseMatMulJob job("j", &sparse_store_, s, density, b, c);
    auto built = job.Build(ctx);
    CUMULON_CHECK(built.ok()) << built.status();
    double cpu = 0;
    int64_t read = 0;
    for (const Task& t : built->spec.tasks) {
      cpu += t.cost.cpu_seconds_ref;
      read += t.cost.bytes_read;
    }
    return std::make_pair(cpu, read);
  };
  auto [cpu_sparse, read_sparse] = totals(0.01);
  auto [cpu_densish, read_densish] = totals(0.5);
  EXPECT_LT(cpu_sparse, cpu_densish / 10);
  EXPECT_LT(read_sparse, read_densish);

  // And the 1%-dense sparse job costs far less than the dense operator.
  MatMulJob dense_job("d", s, b, c, MatMulParams{1, 1, 0}, {});
  auto dense_built = dense_job.Build(ctx);
  ASSERT_TRUE(dense_built.ok());
  double dense_cpu = 0;
  for (const Task& t : dense_built->spec.tasks) {
    dense_cpu += t.cost.cpu_seconds_ref;
  }
  EXPECT_LT(cpu_sparse, dense_cpu / 20);
}

}  // namespace
}  // namespace cumulon
