#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/dense_matrix.h"
#include "matrix/layout.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"
#include "matrix/tile_store.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Tile
// ---------------------------------------------------------------------------

TEST(TileTest, StartsZeroFilled) {
  Tile t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(t.At(r, c), 0.0);
  }
}

TEST(TileTest, SetAndGetRoundTrip) {
  Tile t(2, 2);
  t.Set(0, 1, 3.5);
  t.Set(1, 0, -2.0);
  EXPECT_EQ(t.At(0, 1), 3.5);
  EXPECT_EQ(t.At(1, 0), -2.0);
}

TEST(TileTest, SizeBytesCountsHeaderAndPayload) {
  Tile t(10, 20);
  EXPECT_EQ(t.SizeBytes(), 16 + 10 * 20 * 8);
}

TEST(TileTest, RowMajorDataLayout) {
  Tile t(2, 3);
  t.Set(1, 2, 9.0);
  EXPECT_EQ(t.data()[1 * 3 + 2], 9.0);
}

// ---------------------------------------------------------------------------
// TileLayout
// ---------------------------------------------------------------------------

TEST(LayoutTest, ExactGrid) {
  TileLayout layout(100, 60, 50, 20);
  EXPECT_EQ(layout.grid_rows(), 2);
  EXPECT_EQ(layout.grid_cols(), 3);
  EXPECT_EQ(layout.num_tiles(), 6);
  EXPECT_EQ(layout.TileRowsAt(0), 50);
  EXPECT_EQ(layout.TileRowsAt(1), 50);
  EXPECT_EQ(layout.TileColsAt(2), 20);
}

TEST(LayoutTest, RaggedEdgeTiles) {
  TileLayout layout(105, 64, 50, 20);
  EXPECT_EQ(layout.grid_rows(), 3);
  EXPECT_EQ(layout.grid_cols(), 4);
  EXPECT_EQ(layout.TileRowsAt(2), 5);
  EXPECT_EQ(layout.TileColsAt(3), 4);
}

TEST(LayoutTest, TransposedSwapsEverything) {
  TileLayout layout(105, 64, 50, 20);
  TileLayout t = layout.Transposed();
  EXPECT_EQ(t.rows(), 64);
  EXPECT_EQ(t.cols(), 105);
  EXPECT_EQ(t.tile_rows(), 20);
  EXPECT_EQ(t.tile_cols(), 50);
  EXPECT_TRUE(t.Transposed() == layout);
}

TEST(LayoutTest, TotalBytesMatchesTileSum) {
  TileLayout layout(105, 64, 50, 20);
  int64_t sum = 0;
  for (int64_t r = 0; r < layout.grid_rows(); ++r) {
    for (int64_t c = 0; c < layout.grid_cols(); ++c) {
      sum += 16 + layout.TileRowsAt(r) * layout.TileColsAt(c) * 8;
    }
  }
  EXPECT_EQ(layout.TotalBytes(), sum);
}

TEST(LayoutTest, SquareFactory) {
  TileLayout layout = TileLayout::Square(100, 70, 32);
  EXPECT_EQ(layout.tile_rows(), 32);
  EXPECT_EQ(layout.tile_cols(), 32);
}

/// Property sweep: tile row/col counts always reconstruct the full matrix.
class LayoutPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(LayoutPropertyTest, TileDimsPartitionMatrix) {
  const auto [rows, cols, tile] = GetParam();
  TileLayout layout = TileLayout::Square(rows, cols, tile);
  int64_t row_sum = 0;
  for (int64_t r = 0; r < layout.grid_rows(); ++r) {
    EXPECT_GT(layout.TileRowsAt(r), 0);
    EXPECT_LE(layout.TileRowsAt(r), tile);
    row_sum += layout.TileRowsAt(r);
  }
  EXPECT_EQ(row_sum, rows);
  int64_t col_sum = 0;
  for (int64_t c = 0; c < layout.grid_cols(); ++c) {
    col_sum += layout.TileColsAt(c);
  }
  EXPECT_EQ(col_sum, cols);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 16), std::make_tuple(16, 16, 16),
                      std::make_tuple(17, 15, 16), std::make_tuple(100, 3, 7),
                      std::make_tuple(3, 100, 7),
                      std::make_tuple(1000, 999, 64)));

// ---------------------------------------------------------------------------
// Tile kernels vs. reference DenseMatrix
// ---------------------------------------------------------------------------

Tile DenseToTile(const DenseMatrix& m) {
  Tile t(m.rows(), m.cols());
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) t.Set(r, c, m.At(r, c));
  }
  return t;
}

TEST(TileOpsTest, GemmMatchesReference) {
  Rng rng(1);
  DenseMatrix a = DenseMatrix::Gaussian(37, 23, &rng);
  DenseMatrix b = DenseMatrix::Gaussian(23, 41, &rng);
  auto expected = a.Multiply(b);
  ASSERT_TRUE(expected.ok());

  Tile ta = DenseToTile(a), tb = DenseToTile(b);
  Tile tc(37, 41);
  ASSERT_TRUE(Gemm(ta, tb, 1.0, 0.0, &tc).ok());
  for (int64_t r = 0; r < 37; ++r) {
    for (int64_t c = 0; c < 41; ++c) {
      EXPECT_NEAR(tc.At(r, c), expected->At(r, c), 1e-9);
    }
  }
}

TEST(TileOpsTest, GemmAlphaBetaSemantics) {
  Rng rng(2);
  DenseMatrix a = DenseMatrix::Gaussian(5, 6, &rng);
  DenseMatrix b = DenseMatrix::Gaussian(6, 4, &rng);
  Tile ta = DenseToTile(a), tb = DenseToTile(b);
  Tile tc(5, 4);
  FillTile(&tc, 2.0);
  // C = 3*A*B + 0.5*C
  ASSERT_TRUE(Gemm(ta, tb, 3.0, 0.5, &tc).ok());
  auto ab = a.Multiply(b);
  ASSERT_TRUE(ab.ok());
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(tc.At(r, c), 3.0 * ab->At(r, c) + 1.0, 1e-9);
    }
  }
}

TEST(TileOpsTest, GemmRejectsShapeMismatch) {
  Tile a(3, 4), b(5, 2), c(3, 2);
  EXPECT_EQ(Gemm(a, b, 1.0, 0.0, &c).code(), StatusCode::kInvalidArgument);
}

TEST(TileOpsTest, GemmLargerThanBlockSize) {
  // Exercise the cache-blocked path with dims > 64 and non-multiples.
  Rng rng(3);
  DenseMatrix a = DenseMatrix::Gaussian(130, 70, &rng);
  DenseMatrix b = DenseMatrix::Gaussian(70, 65, &rng);
  auto expected = a.Multiply(b);
  ASSERT_TRUE(expected.ok());
  Tile ta = DenseToTile(a), tb = DenseToTile(b), tc(130, 65);
  ASSERT_TRUE(Gemm(ta, tb, 1.0, 0.0, &tc).ok());
  double worst = 0;
  for (int64_t r = 0; r < 130; ++r) {
    for (int64_t c = 0; c < 65; ++c) {
      worst = std::max(worst, std::abs(tc.At(r, c) - expected->At(r, c)));
    }
  }
  EXPECT_LT(worst, 1e-9);
}

class BinaryOpTest : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(BinaryOpTest, MatchesScalarSemantics) {
  const BinaryOp op = GetParam();
  Rng rng(4);
  Tile a(9, 7), b(9, 7), out(9, 7);
  FillGaussian(&a, &rng);
  FillUniform(&b, &rng, 0.5, 2.0);  // avoid division by ~0
  ASSERT_TRUE(EwBinary(op, a, b, &out).ok());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.data()[i], ApplyBinary(op, a.data()[i], b.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, BinaryOpTest,
                         ::testing::Values(BinaryOp::kAdd, BinaryOp::kSub,
                                           BinaryOp::kMul, BinaryOp::kDiv,
                                           BinaryOp::kMax, BinaryOp::kMin));

class UnaryOpTest : public ::testing::TestWithParam<UnaryOp> {};

TEST_P(UnaryOpTest, MatchesScalarSemantics) {
  const UnaryOp op = GetParam();
  Rng rng(5);
  Tile a(6, 8), out(6, 8);
  FillUniform(&a, &rng, 0.1, 3.0);  // positive domain for log/sqrt
  const double scalar = 1.7;
  ASSERT_TRUE(EwUnary(op, a, scalar, &out).ok());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.data()[i], ApplyUnary(op, a.data()[i], scalar));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, UnaryOpTest,
    ::testing::Values(UnaryOp::kScale, UnaryOp::kAddScalar, UnaryOp::kPow,
                      UnaryOp::kExp, UnaryOp::kLog, UnaryOp::kAbs,
                      UnaryOp::kSqrt, UnaryOp::kSigmoid, UnaryOp::kRecip));

TEST(TileOpsTest, EwBinaryRejectsShapeMismatch) {
  Tile a(2, 3), b(3, 2), out(2, 3);
  EXPECT_FALSE(EwBinary(BinaryOp::kAdd, a, b, &out).ok());
}

TEST(TileOpsTest, EwBinaryAllowsAliasedOutput) {
  Tile a(4, 4), b(4, 4);
  FillTile(&a, 2.0);
  FillTile(&b, 3.0);
  ASSERT_TRUE(EwBinary(BinaryOp::kMul, a, b, &a).ok());
  EXPECT_EQ(a.At(0, 0), 6.0);
  EXPECT_EQ(a.At(3, 3), 6.0);
}

TEST(TileOpsTest, TransposeMatchesReference) {
  Rng rng(6);
  Tile a(70, 90), out(90, 70);
  FillGaussian(&a, &rng);
  ASSERT_TRUE(TransposeTile(a, &out).ok());
  for (int64_t r = 0; r < 70; ++r) {
    for (int64_t c = 0; c < 90; ++c) {
      EXPECT_EQ(out.At(c, r), a.At(r, c));
    }
  }
}

TEST(TileOpsTest, TransposeRejectsWrongOutputShape) {
  Tile a(3, 4), out(3, 4);
  EXPECT_FALSE(TransposeTile(a, &out).ok());
}

TEST(TileOpsTest, AccumulateAdds) {
  Tile x(3, 3), acc(3, 3);
  FillTile(&x, 1.5);
  FillTile(&acc, 1.0);
  ASSERT_TRUE(AccumulateInto(x, &acc).ok());
  ASSERT_TRUE(AccumulateInto(x, &acc).ok());
  EXPECT_DOUBLE_EQ(acc.At(1, 1), 4.0);
}

TEST(TileOpsTest, SumAndNorm) {
  Tile t(2, 2);
  t.Set(0, 0, 3.0);
  t.Set(1, 1, -4.0);
  EXPECT_DOUBLE_EQ(TileSum(t), -1.0);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(t), 5.0);
}

TEST(TileOpsTest, MaxAbsDiffDetectsDifference) {
  Tile a(2, 2), b(2, 2);
  b.Set(1, 0, 0.25);
  auto d = MaxAbsDiff(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 0.25);
  Tile c(3, 2);
  EXPECT_FALSE(MaxAbsDiff(a, c).ok());
}

TEST(TileOpsTest, FillsAreDeterministicPerSeed) {
  Rng r1(99), r2(99);
  Tile a(5, 5), b(5, 5);
  FillGaussian(&a, &r1);
  FillGaussian(&b, &r2);
  auto d = MaxAbsDiff(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), 0.0);
}

// ---------------------------------------------------------------------------
// DenseMatrix
// ---------------------------------------------------------------------------

TEST(DenseMatrixTest, IdentityMultiplyIsNoOp) {
  Rng rng(7);
  DenseMatrix a = DenseMatrix::Gaussian(8, 8, &rng);
  auto prod = a.Multiply(DenseMatrix::Identity(8));
  ASSERT_TRUE(prod.ok());
  auto diff = a.MaxAbsDiff(*prod);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

TEST(DenseMatrixTest, TransposeTwiceIsIdentity) {
  Rng rng(8);
  DenseMatrix a = DenseMatrix::Gaussian(5, 9, &rng);
  auto diff = a.MaxAbsDiff(a.Transpose().Transpose());
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), 0.0);
}

TEST(DenseMatrixTest, MultiplyAssociatesWithinTolerance) {
  Rng rng(9);
  DenseMatrix a = DenseMatrix::Gaussian(6, 7, &rng);
  DenseMatrix b = DenseMatrix::Gaussian(7, 5, &rng);
  DenseMatrix c = DenseMatrix::Gaussian(5, 4, &rng);
  auto left = a.Multiply(*b.Multiply(c));
  auto right = a.Multiply(b)->Multiply(c);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto diff = left->MaxAbsDiff(*right);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST(DenseMatrixTest, MultiplyRejectsBadShapes) {
  DenseMatrix a(2, 3), b(4, 2);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(DenseMatrixTest, ConstantAndUnary) {
  DenseMatrix a = DenseMatrix::Constant(3, 3, 4.0);
  DenseMatrix s = a.Unary(UnaryOp::kSqrt);
  EXPECT_DOUBLE_EQ(s.At(2, 2), 2.0);
}

// ---------------------------------------------------------------------------
// InMemoryTileStore & tiled matrix round trips
// ---------------------------------------------------------------------------

TEST(TileStoreTest, PutGetRoundTrip) {
  InMemoryTileStore store;
  auto tile = std::make_shared<Tile>(2, 2);
  tile->Set(0, 0, 42.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, tile, -1).ok());
  auto got = store.Get("m", TileId{0, 0}, -1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 42.0);
}

TEST(TileStoreTest, GetMissingTileIsNotFound) {
  InMemoryTileStore store;
  EXPECT_EQ(store.Get("m", TileId{0, 0}, -1).status().code(),
            StatusCode::kNotFound);
}

TEST(TileStoreTest, DeleteMatrixRemovesOnlyThatMatrix) {
  InMemoryTileStore store;
  auto tile = std::make_shared<Tile>(1, 1);
  ASSERT_TRUE(store.Put("a", TileId{0, 0}, tile, -1).ok());
  ASSERT_TRUE(store.Put("a", TileId{0, 1}, tile, -1).ok());
  ASSERT_TRUE(store.Put("b", TileId{0, 0}, tile, -1).ok());
  ASSERT_TRUE(store.DeleteMatrix("a").ok());
  EXPECT_FALSE(store.Get("a", TileId{0, 0}, -1).ok());
  EXPECT_TRUE(store.Get("b", TileId{0, 0}, -1).ok());
  EXPECT_EQ(store.NumTiles(), 1);
}

TEST(TileStoreTest, PutOverwrites) {
  InMemoryTileStore store;
  auto t1 = std::make_shared<Tile>(1, 1);
  t1->Set(0, 0, 1.0);
  auto t2 = std::make_shared<Tile>(1, 1);
  t2->Set(0, 0, 2.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, t1, -1).ok());
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, t2, -1).ok());
  auto got = store.Get("m", TileId{0, 0}, -1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 2.0);
}

TEST(TiledMatrixTest, StoreLoadDenseRoundTrip) {
  Rng rng(10);
  DenseMatrix dense = DenseMatrix::Gaussian(45, 33, &rng);
  InMemoryTileStore store;
  TiledMatrix m{"m", TileLayout::Square(45, 33, 16)};
  ASSERT_TRUE(StoreDense(dense, m, &store).ok());
  auto loaded = LoadDense(m, &store);
  ASSERT_TRUE(loaded.ok());
  auto diff = dense.MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), 0.0);
}

TEST(TiledMatrixTest, StoreDenseRejectsWrongShape) {
  InMemoryTileStore store;
  DenseMatrix dense(4, 4);
  TiledMatrix m{"m", TileLayout::Square(5, 4, 2)};
  EXPECT_FALSE(StoreDense(dense, m, &store).ok());
}

TEST(TiledMatrixTest, GenerateGaussianCoversAllTiles) {
  InMemoryTileStore store;
  TiledMatrix m{"g", TileLayout::Square(33, 20, 8)};
  Rng rng(11);
  ASSERT_TRUE(GenerateMatrix(m, FillKind::kGaussian, 0.0, &rng, &store).ok());
  EXPECT_EQ(store.NumTiles(), m.layout.num_tiles());
  auto dense = LoadDense(m, &store);
  ASSERT_TRUE(dense.ok());
  EXPECT_GT(dense->FrobeniusNorm(), 0.0);
}

TEST(TiledMatrixTest, GenerateConstant) {
  InMemoryTileStore store;
  TiledMatrix m{"c", TileLayout::Square(10, 10, 4)};
  ASSERT_TRUE(GenerateMatrix(m, FillKind::kConstant, 2.5, nullptr,
                             &store).ok());
  auto dense = LoadDense(m, &store);
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense->At(9, 9), 2.5);
}

TEST(TiledMatrixTest, GenerateRandomNeedsRng) {
  InMemoryTileStore store;
  TiledMatrix m{"g", TileLayout::Square(4, 4, 2)};
  EXPECT_FALSE(GenerateMatrix(m, FillKind::kUniform, 0.0, nullptr,
                              &store).ok());
}

TEST(TiledMatrixTest, TiledMaxAbsDiffSeesPerTileDifferences) {
  InMemoryTileStore store;
  TiledMatrix a{"a", TileLayout::Square(8, 8, 4)};
  TiledMatrix b{"b", TileLayout::Square(8, 8, 4)};
  ASSERT_TRUE(GenerateMatrix(a, FillKind::kConstant, 1.0, nullptr,
                             &store).ok());
  ASSERT_TRUE(GenerateMatrix(b, FillKind::kConstant, 1.0, nullptr,
                             &store).ok());
  auto d0 = TiledMaxAbsDiff(a, b, &store);
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(d0.value(), 0.0);
  auto tile = std::make_shared<Tile>(4, 4);
  tile->Set(2, 2, 9.0);  // differs from constant 1.0 by 8 at this entry
  ASSERT_TRUE(store.Put("b", TileId{1, 1}, tile, -1).ok());
  auto d1 = TiledMaxAbsDiff(a, b, &store);
  ASSERT_TRUE(d1.ok());
  EXPECT_DOUBLE_EQ(d1.value(), 8.0);
}

}  // namespace
}  // namespace cumulon
