#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Repeat (loop unrolling)
// ---------------------------------------------------------------------------

TEST(RepeatTest, ConcatenatesBodyNTimes) {
  Program body;
  body.Assign("x", Scale(Expr::Input("x", 4, 4), 2.0));
  Program unrolled = Repeat(body, 3);
  EXPECT_EQ(unrolled.assignments.size(), 3u);
  EXPECT_EQ(Repeat(body, 0).assignments.size(), 0u);
}

TEST(RepeatTest, UnrolledIterationChainsThroughVersions) {
  InMemoryTileStore store;
  Rng rng(61);
  const int64_t n = 16, tile = 8;
  TiledMatrix x{"x", TileLayout::Square(n, n, tile)};
  DenseMatrix dense = DenseMatrix::Gaussian(n, n, &rng);
  ASSERT_TRUE(StoreDense(dense, x, &store).ok());

  Program body;
  body.Assign("x", Scale(Expr::Input("x", n, n), 2.0));
  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(Repeat(body, 4), {{"x", x}}, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  EXPECT_EQ(lowered->outputs.at("x").name, "x@v4");

  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  auto result = LoadDense(lowered->outputs.at("x"), &store);
  ASSERT_TRUE(result.ok());
  auto diff = result->MaxAbsDiff(dense.Unary(UnaryOp::kScale, 16.0));
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

TEST(RepeatTest, TwoGnmfIterationsMatchSequentialReference) {
  InMemoryTileStore store;
  Rng rng(62);
  GnmfSpec spec;
  spec.m = 16;
  spec.n = 12;
  spec.k = 4;
  const int64_t tile = 8;

  auto make_uniform = [&](int64_t rows, int64_t cols) {
    DenseMatrix m(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) m.Set(r, c, rng.NextDouble(0.1, 1));
    }
    return m;
  };
  DenseMatrix dv = make_uniform(spec.m, spec.n);
  DenseMatrix dw = make_uniform(spec.m, spec.k);
  DenseMatrix dh = make_uniform(spec.k, spec.n);
  std::map<std::string, TiledMatrix> bindings = {
      {"V", {"V", TileLayout::Square(spec.m, spec.n, tile)}},
      {"W", {"W", TileLayout::Square(spec.m, spec.k, tile)}},
      {"H", {"H", TileLayout::Square(spec.k, spec.n, tile)}},
  };
  ASSERT_TRUE(StoreDense(dv, bindings.at("V"), &store).ok());
  ASSERT_TRUE(StoreDense(dw, bindings.at("W"), &store).ok());
  ASSERT_TRUE(StoreDense(dh, bindings.at("H"), &store).ok());

  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(OptimizeProgram(Repeat(BuildGnmfIteration(spec), 2)),
                       bindings, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  // Reference: two sequential dense iterations.
  auto iterate = [](const DenseMatrix& v, DenseMatrix* w, DenseMatrix* h) {
    auto wt = w->Transpose();
    auto h_new = h->Binary(
        BinaryOp::kMul,
        *wt.Multiply(v)->Binary(BinaryOp::kDiv,
                                *wt.Multiply(*w)->Multiply(*h)));
    *h = std::move(h_new).value();
    auto ht = h->Transpose();
    auto w_new = w->Binary(
        BinaryOp::kMul,
        *v.Multiply(ht)->Binary(BinaryOp::kDiv,
                                *w->Multiply(*h)->Multiply(ht)));
    *w = std::move(w_new).value();
  };
  DenseMatrix w_ref = dw, h_ref = dh;
  iterate(dv, &w_ref, &h_ref);
  iterate(dv, &w_ref, &h_ref);

  auto h_out = LoadDense(lowered->outputs.at("H"), &store);
  auto w_out = LoadDense(lowered->outputs.at("W"), &store);
  ASSERT_TRUE(h_out.ok() && w_out.ok());
  auto dh_diff = h_ref.MaxAbsDiff(*h_out);
  auto dw_diff = w_ref.MaxAbsDiff(*w_out);
  ASSERT_TRUE(dh_diff.ok() && dw_diff.ok());
  EXPECT_LT(dh_diff.value(), 1e-8);
  EXPECT_LT(dw_diff.value(), 1e-8);
}

// ---------------------------------------------------------------------------
// Speculative execution
// ---------------------------------------------------------------------------

JobSpec UniformJob(int tasks, double cpu_ref) {
  JobSpec job;
  for (int i = 0; i < tasks; ++i) {
    Task t;
    t.cost.cpu_seconds_ref = cpu_ref;
    job.tasks.push_back(std::move(t));
  }
  return job;
}

TEST(SpeculationTest, NoEffectWithoutNoise) {
  ClusterConfig cluster{MachineProfile{}, 4, 2};
  SimEngineOptions base;
  base.task_startup_seconds = 0.5;
  SimEngineOptions spec = base;
  spec.speculative_execution = true;
  SimEngine plain(cluster, base), speculative(cluster, spec);
  JobSpec job = UniformJob(64, 2.0);
  auto s1 = plain.RunJob(job), s2 = speculative.RunJob(job);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_DOUBLE_EQ(s1->duration_seconds, s2->duration_seconds);
}

TEST(SpeculationTest, TamesStragglersUnderHeavyNoise) {
  ClusterConfig cluster{MachineProfile{}, 4, 2};
  SimEngineOptions noisy;
  noisy.task_startup_seconds = 0.5;
  noisy.noise_sigma = 0.8;
  noisy.seed = 9;
  SimEngineOptions spec = noisy;
  spec.speculative_execution = true;
  SimEngine plain(cluster, noisy), speculative(cluster, spec);
  JobSpec job = UniformJob(256, 2.0);
  auto s1 = plain.RunJob(job), s2 = speculative.RunJob(job);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_LT(s2->duration_seconds, s1->duration_seconds);
}

TEST(SpeculationTest, BackupCapBoundsWorstTask) {
  ClusterConfig cluster{MachineProfile{}, 1, 1};
  SimEngineOptions spec;
  spec.task_startup_seconds = 0.5;
  spec.noise_sigma = 1.5;  // brutal stragglers
  spec.speculative_execution = true;
  spec.seed = 13;
  SimEngine engine(cluster, spec);
  JobSpec job = UniformJob(200, 1.0);
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());
  // Noise-free duration is startup + cpu; worst case with speculation is
  // base + startup + backup's own noisy run — enforce a generous cap that
  // an unbounded lognormal would blow through.
  const double base = 0.5 + 1.0;
  for (const TaskRunInfo& run : stats->task_runs) {
    EXPECT_LT(run.duration_seconds, base + 0.5 + base * 50.0);
  }
}

TEST(SpeculationTest, DeterministicPerSeed) {
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  SimEngineOptions spec;
  spec.noise_sigma = 0.5;
  spec.speculative_execution = true;
  spec.seed = 21;
  SimEngine e1(cluster, spec), e2(cluster, spec);
  JobSpec job = UniformJob(64, 1.0);
  auto s1 = e1.RunJob(job), s2 = e2.RunJob(job);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_DOUBLE_EQ(s1->duration_seconds, s2->duration_seconds);
}

}  // namespace
}  // namespace cumulon
