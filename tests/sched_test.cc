#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/physical_plan.h"
#include "matrix/dense_matrix.h"
#include "sched/elastic.h"
#include "sched/slot_pool.h"
#include "sched/workload_manager.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// SlotPool
// ---------------------------------------------------------------------------

TEST(SlotPoolTest, SinglePlanGetsEverySlot) {
  SlotPool pool(4);
  pool.RegisterPlan(1);
  EXPECT_EQ(pool.FairShare(1), 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(pool.Acquire(1));
  EXPECT_EQ(pool.held(1), 4);
  EXPECT_EQ(pool.free_slots(), 0);
  for (int i = 0; i < 4; ++i) pool.Release(1);
  pool.UnregisterPlan(1);
  EXPECT_EQ(pool.registered_plans(), 0);
}

TEST(SlotPoolTest, FairShareSplitsAcrossPlans) {
  SlotPool pool(5);
  pool.RegisterPlan(1);
  pool.RegisterPlan(2);
  EXPECT_EQ(pool.FairShare(1), 3);  // ceil(5/2)
  pool.RegisterPlan(3);
  EXPECT_EQ(pool.FairShare(1), 2);  // ceil(5/3)
  pool.UnregisterPlan(2);
  pool.UnregisterPlan(3);
  EXPECT_EQ(pool.FairShare(1), 5);
  pool.UnregisterPlan(1);
}

TEST(SlotPoolTest, WorkConservingWhenAlone) {
  // One plan may exceed its fair share while no other plan waits.
  SlotPool pool(4);
  pool.RegisterPlan(1);
  pool.RegisterPlan(2);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(pool.Acquire(1));
  EXPECT_EQ(pool.held(1), 4);
  pool.Release(1);
  pool.Release(1);
  pool.UnregisterPlan(1);
  pool.UnregisterPlan(2);
}

TEST(SlotPoolTest, ReleaseWakesBlockedAcquire) {
  SlotPool pool(1);
  pool.RegisterPlan(1);
  pool.RegisterPlan(2);
  ASSERT_TRUE(pool.Acquire(1));
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_TRUE(pool.Acquire(2));
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  pool.Release(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.held(2), 1);
  pool.Release(2);
  pool.UnregisterPlan(1);
  pool.UnregisterPlan(2);
}

TEST(SlotPoolTest, AcquireObservesCancellation) {
  SlotPool pool(1);
  pool.RegisterPlan(1);
  pool.RegisterPlan(2);
  ASSERT_TRUE(pool.Acquire(1));  // exhaust the pool
  std::atomic<bool> cancel{false};
  std::thread canceller([&] { cancel.store(true); });
  EXPECT_FALSE(pool.Acquire(2, &cancel));  // returns instead of deadlocking
  canceller.join();
  pool.Release(1);
  pool.UnregisterPlan(1);
  pool.UnregisterPlan(2);
}

TEST(SlotPoolTest, UnregisterReportsLeakedSlots) {
  SlotPool pool(2);
  pool.RegisterPlan(7);
  ASSERT_TRUE(pool.Acquire(7));
  EXPECT_EQ(pool.free_slots(), 1);
  pool.UnregisterPlan(7);
  EXPECT_EQ(pool.free_slots(), 2);  // leaked slots returned to the pool
}

// ---------------------------------------------------------------------------
// WorkloadManager harnesses
// ---------------------------------------------------------------------------

constexpr int64_t kTile = 512;

/// Simulated world: plans are metadata-only matmuls over a shared DFS.
class SchedSimTest : public ::testing::Test {
 protected:
  SchedSimTest() : dfs_(MakeDfsOptions()), store_(&dfs_) {
    ClusterConfig cluster{MachineProfile{}, 4, 2};
    engine_ = std::make_unique<SimEngine>(cluster, SimEngineOptions{});
  }

  static DfsOptions MakeDfsOptions() {
    DfsOptions options;
    options.num_nodes = 4;
    return options;
  }

  /// One `tag`: C = A x B plan over dim-square metadata-only inputs.
  PhysicalPlan MakePlan(const std::string& tag, int64_t dim) {
    TiledMatrix a{tag + "_A", TileLayout::Square(dim, dim, kTile)};
    TiledMatrix b{tag + "_B", TileLayout::Square(dim, dim, kTile)};
    TiledMatrix c{tag + "_C", TileLayout::Square(dim, dim, kTile)};
    for (const TiledMatrix& m : {a, b}) {
      for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
        for (int64_t col = 0; col < m.layout.grid_cols(); ++col) {
          CUMULON_CHECK(store_.PutMeta(m.name, TileId{r, col},
                                       16 + kTile * kTile * 8, -1)
                            .ok());
        }
      }
    }
    PhysicalPlan plan;
    CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
    return plan;
  }

  WorkloadManagerOptions SimManagerOptions() {
    WorkloadManagerOptions options;
    options.virtual_time = true;
    options.executor.real_mode = false;
    options.executor.job_startup_seconds = 1.0;
    return options;
  }

  Submission MakeSubmission(const std::string& tag, int64_t dim,
                            double est_seconds, double est_dollars) {
    Submission submission;
    submission.name = tag;
    submission.plan = MakePlan(tag, dim);
    submission.estimate = {est_seconds, est_dollars, true};
    return submission;
  }

  SimDfs dfs_;
  DfsTileStore store_;
  TileOpCostModel cost_;
  std::unique_ptr<SimEngine> engine_;
};

TEST_F(SchedSimTest, RunsSubmissionsToCompletion) {
  WorkloadManager manager(&store_, engine_.get(), &cost_,
                          SimManagerOptions());
  auto id1 = manager.Submit(MakeSubmission("p1", 1024, 5.0, 0.1));
  auto id2 = manager.Submit(MakeSubmission("p2", 1024, 5.0, 0.1));
  ASSERT_TRUE(id1.ok()) << id1.status();
  ASSERT_TRUE(id2.ok()) << id2.status();
  const PlanOutcome out1 = manager.Wait(*id1);
  EXPECT_EQ(out1.state, PlanState::kDone);
  EXPECT_GT(out1.stats.total_seconds, 0.0);
  const std::vector<PlanOutcome> all = manager.Drain();
  EXPECT_EQ(all.size(), 2u);
  for (const PlanOutcome& outcome : all) {
    EXPECT_EQ(outcome.state, PlanState::kDone) << outcome.status;
    EXPECT_GE(outcome.finish_seconds, outcome.start_seconds);
  }
  EXPECT_EQ(manager.metrics()->counter("sched.completed")->Value(), 2);
}

TEST_F(SchedSimTest, RejectsInfeasibleDeadlineWithEstimate) {
  WorkloadManager manager(&store_, engine_.get(), &cost_,
                          SimManagerOptions());
  Submission submission = MakeSubmission("tight", 1024, 120.0, 0.5);
  submission.deadline_seconds = 10.0;  // estimate says 120 s
  auto id = manager.Submit(std::move(submission));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  // The rejection carries the predictor's estimate so the tenant can pick
  // a feasible deadline.
  EXPECT_NE(id.status().message().find("120"), std::string::npos)
      << id.status();
  EXPECT_NE(id.status().message().find("deadline"), std::string::npos);
  EXPECT_EQ(manager.metrics()->counter("sched.rejected")->Value(), 1);
  manager.Drain();
}

TEST_F(SchedSimTest, RejectsOverBudgetSubmission) {
  WorkloadManager manager(&store_, engine_.get(), &cost_,
                          SimManagerOptions());
  Submission submission = MakeSubmission("pricey", 1024, 10.0, 2.5);
  submission.budget_dollars = 1.0;  // estimate says $2.50
  auto id = manager.Submit(std::move(submission));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(id.status().message().find("budget"), std::string::npos);
  manager.Drain();
}

TEST_F(SchedSimTest, QueuedBacklogTightensAdmission) {
  // A deadline feasible on an idle manager becomes infeasible once the
  // queue already holds hours of estimated work.
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  options.max_concurrent_plans = 1;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  ASSERT_TRUE(manager.Submit(MakeSubmission("bulk", 1024, 3600.0, 1.0)).ok());
  Submission late = MakeSubmission("late", 1024, 30.0, 0.1);
  late.deadline_seconds = 60.0;  // fine alone, hopeless behind 1h of work
  auto id = manager.Submit(std::move(late));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  manager.Start();
  manager.Drain();
}

TEST_F(SchedSimTest, EdfOvertakesFifoOrder) {
  // Loose-deadline plan submitted first, tight-deadline second. FIFO runs
  // them in submission order; EDF lets the tight deadline overtake.
  for (const SchedPolicy policy : {SchedPolicy::kFifo, SchedPolicy::kEdf}) {
    WorkloadManagerOptions options = SimManagerOptions();
    options.policy = policy;
    options.max_concurrent_plans = 1;
    options.defer_start = true;
    WorkloadManager manager(&store_, engine_.get(), &cost_, options);
    Submission loose =
        MakeSubmission(StrCat("loose_", SchedPolicyName(policy)), 2048,
                       100.0, 0.1);
    loose.deadline_seconds = 100000.0;
    Submission tight =
        MakeSubmission(StrCat("tight_", SchedPolicyName(policy)), 1024,
                       10.0, 0.1);
    tight.deadline_seconds = 50000.0;
    auto loose_id = manager.Submit(std::move(loose));
    auto tight_id = manager.Submit(std::move(tight));
    ASSERT_TRUE(loose_id.ok()) << loose_id.status();
    ASSERT_TRUE(tight_id.ok()) << tight_id.status();
    manager.Start();
    const PlanOutcome loose_out = manager.Wait(*loose_id);
    const PlanOutcome tight_out = manager.Wait(*tight_id);
    manager.Drain();
    if (policy == SchedPolicy::kFifo) {
      EXPECT_LT(loose_out.start_seconds, tight_out.start_seconds);
    } else {
      EXPECT_LT(tight_out.start_seconds, loose_out.start_seconds);
    }
  }
}

TEST_F(SchedSimTest, FairShareAlternatesTenants) {
  // Tenant A floods the queue, then tenant B submits one plan: fair-share
  // runs B's plan second (after one A plan), not last.
  WorkloadManagerOptions options = SimManagerOptions();
  options.policy = SchedPolicy::kFairShare;
  options.max_concurrent_plans = 1;
  options.defer_start = true;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  std::vector<int64_t> heavy_ids;
  for (int i = 0; i < 3; ++i) {
    Submission s = MakeSubmission(StrCat("heavy", i), 1024, 10.0, 0.1);
    s.tenant = "heavy";
    auto id = manager.Submit(std::move(s));
    ASSERT_TRUE(id.ok());
    heavy_ids.push_back(*id);
  }
  Submission light = MakeSubmission("light", 1024, 10.0, 0.1);
  light.tenant = "light";
  auto light_id = manager.Submit(std::move(light));
  ASSERT_TRUE(light_id.ok());
  manager.Start();
  const PlanOutcome light_out = manager.Wait(*light_id);
  const std::vector<PlanOutcome> all = manager.Drain();
  int heavier_started_before_light = 0;
  for (int64_t id : heavy_ids) {
    for (const PlanOutcome& outcome : all) {
      if (outcome.plan_id == id &&
          outcome.start_seconds < light_out.start_seconds) {
        ++heavier_started_before_light;
      }
    }
  }
  EXPECT_EQ(heavier_started_before_light, 1);
}

TEST_F(SchedSimTest, CancelQueuedPlanNeverRuns) {
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  auto id = manager.Submit(MakeSubmission("doomed", 1024, 5.0, 0.1));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager.Cancel(*id).ok());
  EXPECT_FALSE(manager.Cancel(*id).ok());  // already terminal
  manager.Start();
  const PlanOutcome outcome = manager.Wait(*id);
  EXPECT_EQ(outcome.state, PlanState::kCancelled);
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(outcome.stats.jobs.empty());
  manager.Drain();
  EXPECT_EQ(manager.metrics()->counter("sched.cancelled")->Value(), 1);
}

TEST_F(SchedSimTest, PlanTagsScopeMetricsAndTraceLanes) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  MetricsRegistry metrics;
  // Task spans are recorded by the engine, so the tracer must be wired
  // into the engine options as well as the manager.
  SimEngineOptions sim_options;
  sim_options.tracer = &tracer;
  SimEngine engine(ClusterConfig{MachineProfile{}, 4, 2}, sim_options);
  WorkloadManagerOptions options = SimManagerOptions();
  options.metrics = &metrics;
  options.tracer = &tracer;
  WorkloadManager manager(&store_, &engine, &cost_, options);
  auto a = manager.Submit(MakeSubmission("alpha", 1024, 5.0, 0.1));
  auto b = manager.Submit(MakeSubmission("beta", 1536, 5.0, 0.1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const PlanOutcome out_a = manager.Wait(*a);
  const PlanOutcome out_b = manager.Wait(*b);
  manager.Drain();
  ASSERT_EQ(out_a.state, PlanState::kDone) << out_a.status;
  ASSERT_EQ(out_b.state, PlanState::kDone) << out_b.status;

  // Tagged per-plan metric copies, exact per plan even though the registry
  // is shared: alpha is a 2x2-tile product (4 tasks), beta 3x3 (9 tasks).
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("plan.alpha.exec.tasks", -1), 4);
  EXPECT_EQ(snapshot.CounterOr("plan.beta.exec.tasks", -1), 9);
  EXPECT_EQ(snapshot.CounterOr("exec.tasks", -1), 13);
  // ... and the per-run PlanStats snapshots saw only their own counters.
  EXPECT_EQ(out_a.stats.metrics.CounterOr("exec.tasks", -1), 4);
  EXPECT_EQ(out_b.stats.metrics.CounterOr("exec.tasks", -1), 9);

  // Spans: every task span is tagged with its plan's name and carries a
  // plan arg; per-plan "plan" spans exist on distinct driver lanes.
  int alpha_tasks = 0, beta_tasks = 0, plan_spans = 0;
  for (const TraceSpan& span : tracer.spans()) {
    if (span.category == "task") {
      const bool is_alpha = span.name.rfind("alpha/", 0) == 0;
      const bool is_beta = span.name.rfind("beta/", 0) == 0;
      EXPECT_TRUE(is_alpha || is_beta) << span.name;
      alpha_tasks += is_alpha;
      beta_tasks += is_beta;
      bool has_plan_arg = false;
      for (const auto& [key, value] : span.args) {
        has_plan_arg |= key == "plan";
      }
      EXPECT_TRUE(has_plan_arg);
    }
    if (span.category == "plan") {
      ++plan_spans;
      EXPECT_EQ(span.machine, -1);
    }
  }
  EXPECT_EQ(alpha_tasks, 4);
  EXPECT_EQ(beta_tasks, 9);
  EXPECT_EQ(plan_spans, 2);
}

// ---------------------------------------------------------------------------
// Concurrent stress vs serial execution (real mode, bit-identical outputs)
// ---------------------------------------------------------------------------

struct StressPlanSpec {
  std::string tag;
  int64_t dim = 0;
  uint64_t seed = 0;
};

PhysicalPlan BuildStressPlan(const StressPlanSpec& spec) {
  const int64_t tile = 8;
  TiledMatrix a{spec.tag + "_A", TileLayout::Square(spec.dim, spec.dim, tile)};
  TiledMatrix b{spec.tag + "_B", TileLayout::Square(spec.dim, spec.dim, tile)};
  TiledMatrix c{spec.tag + "_C", TileLayout::Square(spec.dim, spec.dim, tile)};
  PhysicalPlan plan;
  // Split-k products exercise temporaries + SumJob under concurrency.
  CUMULON_CHECK(AddMatMul(a, b, c, MatMulParams{1, 1, 2},
                          {EwStep::Unary(UnaryOp::kScale, 0.5)}, &plan)
                    .ok());
  return plan;
}

void LoadStressInputs(const StressPlanSpec& spec, TileStore* store) {
  const int64_t tile = 8;
  Rng rng(spec.seed);
  for (const char* suffix : {"_A", "_B"}) {
    const TiledMatrix m{spec.tag + suffix,
                        TileLayout::Square(spec.dim, spec.dim, tile)};
    DenseMatrix dense = DenseMatrix::Gaussian(spec.dim, spec.dim, &rng);
    CUMULON_CHECK(StoreDense(dense, m, store).ok());
  }
}

TEST(SchedStressTest, ConcurrentPlansMatchSerialBitForBit) {
  const int kPlans = 12;
  std::vector<StressPlanSpec> specs;
  for (int i = 0; i < kPlans; ++i) {
    specs.push_back({StrCat("s", i), 16 + 8 * (i % 3), 1000 + 7 * (uint64_t)i});
  }

  // Concurrent: every plan through one manager over one shared engine.
  InMemoryTileStore concurrent_store;
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  RealEngine engine(cluster, RealEngineOptions{});
  TileOpCostModel cost;
  MetricsRegistry metrics;
  WorkloadManagerOptions options;
  options.max_concurrent_plans = 4;
  options.metrics = &metrics;
  WorkloadManager manager(&concurrent_store, &engine, &cost, options);

  std::vector<int64_t> ids;
  for (const StressPlanSpec& spec : specs) {
    LoadStressInputs(spec, &concurrent_store);
    Submission submission;
    submission.name = spec.tag;
    submission.plan = BuildStressPlan(spec);
    auto id = manager.Submit(std::move(submission));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }
  // Random-looking cancellations racing the workers: some land while the
  // plan is queued or running, some after it finished (FailedPrecondition).
  for (size_t i = 2; i < ids.size(); i += 5) {
    (void)manager.Cancel(ids[i]);
  }
  const std::vector<PlanOutcome> outcomes = manager.Drain();
  ASSERT_EQ(outcomes.size(), specs.size());

  // Serial reference: identical inputs in a fresh store, one plan at a
  // time through a bare executor.
  InMemoryTileStore serial_store;
  RealEngine serial_engine(cluster, RealEngineOptions{});
  Executor serial_executor(&serial_store, &serial_engine, &cost,
                           ExecutorOptions{});
  for (const StressPlanSpec& spec : specs) {
    LoadStressInputs(spec, &serial_store);
    auto stats = serial_executor.Run(BuildStressPlan(spec));
    ASSERT_TRUE(stats.ok()) << stats.status();
  }

  int completed = 0, cancelled = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const PlanOutcome& outcome = outcomes[i];
    ASSERT_EQ(outcome.name, specs[i].tag);
    if (outcome.state == PlanState::kCancelled) {
      ++cancelled;
      EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
      continue;
    }
    ASSERT_EQ(outcome.state, PlanState::kDone) << outcome.status;
    ++completed;
    const TiledMatrix c{specs[i].tag + "_C",
                        TileLayout::Square(specs[i].dim, specs[i].dim, 8)};
    auto concurrent = LoadDense(c, &concurrent_store);
    auto serial = LoadDense(c, &serial_store);
    ASSERT_TRUE(concurrent.ok()) << concurrent.status();
    ASSERT_TRUE(serial.ok()) << serial.status();
    auto diff = concurrent->MaxAbsDiff(*serial);
    ASSERT_TRUE(diff.ok()) << diff.status();
    EXPECT_EQ(diff.value(), 0.0) << "plan " << specs[i].tag
                                 << " diverged from serial execution";
  }
  EXPECT_GT(completed, 0);
  EXPECT_EQ(completed + cancelled, kPlans);
  EXPECT_EQ(metrics.counter("sched.completed")->Value(), completed);
  EXPECT_EQ(metrics.counter("sched.cancelled")->Value(), cancelled);
  // Slot leases all returned.
  EXPECT_EQ(manager.slot_pool()->free_slots(),
            manager.slot_pool()->total_slots());
}

// ---------------------------------------------------------------------------
// Shutdown semantics: nonblocking queries, queue pull-back, drain races
// ---------------------------------------------------------------------------

TEST_F(SchedSimTest, QueryStateAndTryGetOutcomeAreNonblocking) {
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  auto id = manager.Submit(MakeSubmission("q", 1024, 5.0, 0.1));
  ASSERT_TRUE(id.ok());

  auto state = manager.QueryState(*id);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, PlanState::kQueued);
  // Not terminal yet: FailedPrecondition, and the call does not park.
  auto early = manager.TryGetOutcome(*id);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager.QueryState(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.TryGetOutcome(999).status().code(),
            StatusCode::kNotFound);

  manager.Start();
  manager.Wait(*id);
  auto done = manager.TryGetOutcome(*id);
  ASSERT_TRUE(done.ok()) << done.status();
  EXPECT_EQ(done->state, PlanState::kDone);
  manager.Drain();
}

TEST_F(SchedSimTest, CancelAllQueuedPullsBackUnstartedPlans) {
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  std::vector<int64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = manager.Submit(
        MakeSubmission(StrCat("pull", i), 1024, 10.0, 0.1));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const std::vector<int64_t> cancelled = manager.CancelAllQueued();
  EXPECT_EQ(cancelled.size(), 3u);
  EXPECT_EQ(manager.queued_plans(), 0);
  for (const int64_t id : ids) {
    auto outcome = manager.TryGetOutcome(id);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->state, PlanState::kCancelled);
    // A Wait after the pull-back returns immediately with the same state.
    EXPECT_EQ(manager.Wait(id).state, PlanState::kCancelled);
  }
  manager.Drain();
  EXPECT_EQ(manager.metrics()->counter("sched.cancelled")->Value(), 3);
}

TEST_F(SchedSimTest, DrainWithInFlightPlansFinishesThem) {
  // Start the queue, then immediately pull back whatever has not been
  // dispatched: the drain must still run the in-flight plans to a clean
  // terminal state and return every slot.
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  options.max_concurrent_plans = 1;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  const int kPlans = 6;
  for (int i = 0; i < kPlans; ++i) {
    ASSERT_TRUE(
        manager.Submit(MakeSubmission(StrCat("d", i), 1024, 10.0, 0.1))
            .ok());
  }
  manager.Start();
  // Let the worker dispatch at least the head of the queue before pulling
  // the rest back, so the drain really has in-flight work to finish.
  while (manager.queued_plans() == kPlans) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<int64_t> pulled = manager.CancelAllQueued();
  const std::vector<PlanOutcome> outcomes = manager.Drain();
  ASSERT_EQ(outcomes.size(), static_cast<size_t>(kPlans));
  int done = 0, cancelled = 0;
  for (const PlanOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.state == PlanState::kDone ||
                outcome.state == PlanState::kCancelled)
        << PlanStateName(outcome.state);
    (outcome.state == PlanState::kDone ? done : cancelled)++;
  }
  EXPECT_EQ(done + cancelled, kPlans);
  // Everything pulled back was really cancelled, and the dispatched
  // remainder completed.
  EXPECT_EQ(cancelled, static_cast<int>(pulled.size()));
  EXPECT_GE(done, 1);  // the dispatched head of the queue ran
  EXPECT_EQ(manager.slot_pool()->free_slots(),
            manager.slot_pool()->total_slots());
}

TEST_F(SchedSimTest, CancelRacingDrainStaysConsistent) {
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;
  options.max_concurrent_plans = 2;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  std::vector<int64_t> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = manager.Submit(
        MakeSubmission(StrCat("race", i), 1024, 10.0, 0.1));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  manager.Start();
  std::thread canceller([&] {
    // Individual cancels racing the drain's queue pull-back: every verdict
    // is acceptable (cancelled it first, lost the race to the pull-back,
    // or the plan already finished) — but never a crash or a hang.
    for (size_t i = 0; i < ids.size(); i += 2) {
      const Status st = manager.Cancel(ids[i]);
      EXPECT_TRUE(st.ok() ||
                  st.code() == StatusCode::kFailedPrecondition ||
                  st.code() == StatusCode::kNotFound)
          << st;
    }
  });
  manager.CancelAllQueued();
  canceller.join();
  const std::vector<PlanOutcome> outcomes = manager.Drain();
  ASSERT_EQ(outcomes.size(), ids.size());
  for (const PlanOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.state == PlanState::kDone ||
                outcome.state == PlanState::kCancelled)
        << PlanStateName(outcome.state);
  }
  EXPECT_EQ(manager.slot_pool()->free_slots(),
            manager.slot_pool()->total_slots());
}

// ---------------------------------------------------------------------------
// ElasticFleetController against a live manager
// ---------------------------------------------------------------------------

TEST_F(SchedSimTest, FleetControllerScalesPoolWithBacklog) {
  WorkloadManagerOptions options = SimManagerOptions();
  options.defer_start = true;  // hold the backlog steady while we tick
  options.initial_slots = 2;
  WorkloadManager manager(&store_, engine_.get(), &cost_, options);
  EXPECT_EQ(manager.slot_pool()->total_slots(), 2);

  ElasticControllerOptions controller_options;
  controller_options.policy.min_machines = 1;
  controller_options.policy.max_machines = 8;
  controller_options.policy.target_backlog_seconds_per_machine = 120.0;
  controller_options.slots_per_machine = 2;
  ElasticFleetController controller(FleetState{1, 0}, controller_options);

  // An hour of queued work: the controller must buy machines and grow the
  // manager's slot pool to match.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        manager.Submit(MakeSubmission(StrCat("b", i), 1024, 1800.0, 0.5))
            .ok());
  }
  ASSERT_GT(manager.BacklogSeconds(), 0.0);
  const FleetDecision grow = controller.Tick(&manager);
  EXPECT_TRUE(grow.scaled_out);
  EXPECT_GT(grow.fleet.machines, 1);
  EXPECT_EQ(manager.slot_pool()->total_slots(),
            grow.fleet.machines * controller_options.slots_per_machine);
  EXPECT_EQ(controller.slots(), manager.slot_pool()->total_slots());

  // Backlog gone: the next tick shrinks back to the floor.
  manager.CancelAllQueued();
  manager.Drain();
  EXPECT_EQ(manager.BacklogSeconds(), 0.0);
  const FleetDecision shrink = controller.Tick(&manager);
  EXPECT_TRUE(shrink.scaled_in);
  EXPECT_EQ(shrink.fleet.machines, 1);
  EXPECT_EQ(manager.slot_pool()->total_slots(), 2);
}

}  // namespace
}  // namespace cumulon
