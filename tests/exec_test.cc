#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

/// Harness: a tiny real cluster over an in-memory store, plus reference
/// dense matrices to verify against.
class ExecTest : public ::testing::Test {
 protected:
  ExecTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  /// Creates a Gaussian matrix in both tiled and dense form.
  DenseMatrix MakeInput(const TiledMatrix& m) {
    DenseMatrix dense = DenseMatrix::Gaussian(m.layout.rows(),
                                              m.layout.cols(), &rng_);
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    return dense;
  }

  /// Loads a tiled matrix and compares against a dense reference.
  void ExpectMatches(const TiledMatrix& m, const DenseMatrix& expected,
                     double tol = 1e-9) {
    auto loaded = LoadDense(m, &store_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    auto diff = expected.MaxAbsDiff(*loaded);
    ASSERT_TRUE(diff.ok()) << diff.status();
    EXPECT_LT(diff.value(), tol);
  }

  Rng rng_{42};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
};

// ---------------------------------------------------------------------------
// MatMulJob correctness
// ---------------------------------------------------------------------------

/// Parameterized over (m, k, n, tile, bi, bj, bk) to sweep shapes and split
/// parameters, including ragged edges and split-k with SumJob merging.
class MatMulParamTest
    : public ExecTest,
      public ::testing::WithParamInterface<
          std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, int64_t,
                     int64_t>> {};

TEST_P(MatMulParamTest, ComputesProduct) {
  const auto [m, k, n, tile, bi, bj, bk] = GetParam();
  TiledMatrix a{"A", TileLayout::Square(m, k, tile)};
  TiledMatrix b{"B", TileLayout::Square(k, n, tile)};
  TiledMatrix c{"C", TileLayout::Square(m, n, tile)};
  DenseMatrix da = MakeInput(a);
  DenseMatrix db = MakeInput(b);

  PhysicalPlan plan;
  ASSERT_TRUE(
      AddMatMul(a, b, c, MatMulParams{bi, bj, bk}, {}, &plan).ok());
  auto stats = executor_.Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto expected = da.Multiply(db);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(c, *expected);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSplits, MatMulParamTest,
    ::testing::Values(
        // m, k, n, tile, bi, bj, bk
        std::make_tuple(16, 16, 16, 16, 1, 1, 0),   // single tile
        std::make_tuple(32, 32, 32, 16, 1, 1, 0),   // 2x2 grid
        std::make_tuple(40, 24, 56, 16, 1, 1, 0),   // ragged edges
        std::make_tuple(48, 48, 48, 16, 2, 2, 0),   // blocked tasks
        std::make_tuple(48, 48, 48, 16, 3, 1, 0),   // asymmetric blocks
        std::make_tuple(32, 64, 32, 16, 1, 1, 1),   // split-k: 4 partials
        std::make_tuple(32, 64, 32, 16, 1, 1, 2),   // split-k: 2 partials
        std::make_tuple(40, 72, 24, 16, 2, 1, 2),   // split-k + blocks+ragged
        std::make_tuple(16, 80, 16, 16, 1, 1, 5),   // bk == gk: no split
        std::make_tuple(8, 8, 8, 16, 4, 4, 9)));    // params exceed grid

TEST_F(ExecTest, MatMulRejectsMismatchedInnerDims) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(24, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  MakeInput(a);
  MakeInput(b);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(ExecTest, MatMulRejectsMisalignedTileGrids) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 4)};  // tile_rows 4 != 8
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(ExecTest, MatMulRejectsWrongOutputLayout) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 20, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(ExecTest, SplitKCreatesSumJobAndTemporaries) {
  TiledMatrix a{"A", TileLayout::Square(16, 64, 16)};
  TiledMatrix b{"B", TileLayout::Square(64, 16, 16)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 16)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 1}, {}, &plan).ok());
  EXPECT_EQ(plan.jobs.size(), 2u);  // multiply + sum
  EXPECT_EQ(plan.temporaries.size(), 4u);  // 4 k-splits
}

TEST_F(ExecTest, TemporariesAreDroppedAfterRun) {
  TiledMatrix a{"A", TileLayout::Square(16, 32, 16)};
  TiledMatrix b{"B", TileLayout::Square(32, 16, 16)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 16)};
  MakeInput(a);
  MakeInput(b);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 1}, {}, &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  // Partials gone, result present.
  EXPECT_FALSE(store_.Get("C#k0", TileId{0, 0}, -1).ok());
  EXPECT_TRUE(store_.Get("C", TileId{0, 0}, -1).ok());
}

// ---------------------------------------------------------------------------
// Fused epilogues
// ---------------------------------------------------------------------------

TEST_F(ExecTest, MatMulWithUnaryEpilogue) {
  TiledMatrix a{"A", TileLayout::Square(24, 24, 8)};
  TiledMatrix b{"B", TileLayout::Square(24, 24, 8)};
  TiledMatrix c{"C", TileLayout::Square(24, 24, 8)};
  DenseMatrix da = MakeInput(a), db = MakeInput(b);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{},
                        {EwStep::Unary(UnaryOp::kScale, 0.5)}, &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto expected = da.Multiply(db)->Unary(UnaryOp::kScale, 0.5);
  ExpectMatches(c, expected);
}

TEST_F(ExecTest, MatMulWithBinaryEpilogue) {
  TiledMatrix a{"A", TileLayout::Square(24, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 24, 8)};
  TiledMatrix d{"D", TileLayout::Square(24, 24, 8)};
  TiledMatrix c{"C", TileLayout::Square(24, 24, 8)};
  DenseMatrix da = MakeInput(a), db = MakeInput(b), dd = MakeInput(d);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{},
                        {EwStep::Binary(BinaryOp::kAdd, "D")}, &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto expected = da.Multiply(db)->Binary(BinaryOp::kAdd, dd);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(c, *expected);
}

TEST_F(ExecTest, SwappedBinaryEpilogueOrdersOperands) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix d{"D", TileLayout::Square(16, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  DenseMatrix da = MakeInput(a), db = MakeInput(b), dd = MakeInput(d);
  PhysicalPlan plan;
  // C = D - A*B (swapped subtraction).
  ASSERT_TRUE(
      AddMatMul(a, b, c, MatMulParams{},
                {EwStep::Binary(BinaryOp::kSub, "D", /*swapped=*/true)},
                &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto ab = da.Multiply(db);
  ASSERT_TRUE(ab.ok());
  auto expected = dd.Binary(BinaryOp::kSub, *ab);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(c, *expected);
}

TEST_F(ExecTest, SplitKAppliesEpilogueExactlyOnceInSumJob) {
  TiledMatrix a{"A", TileLayout::Square(16, 64, 16)};
  TiledMatrix b{"B", TileLayout::Square(64, 16, 16)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 16)};
  DenseMatrix da = MakeInput(a), db = MakeInput(b);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 1},
                        {EwStep::Unary(UnaryOp::kAddScalar, 10.0)},
                        &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  // If the epilogue leaked into each of the 4 partials, we'd see +40.
  auto expected = da.Multiply(db)->Unary(UnaryOp::kAddScalar, 10.0);
  ExpectMatches(c, expected);
}

// ---------------------------------------------------------------------------
// EwChainJob / TransposeJob / SumJob
// ---------------------------------------------------------------------------

TEST_F(ExecTest, EwChainAppliesStepsInOrder) {
  TiledMatrix in{"X", TileLayout::Square(20, 12, 8)};
  TiledMatrix out{"Y", TileLayout::Square(20, 12, 8)};
  DenseMatrix dx = MakeInput(in);
  PhysicalPlan plan;
  // y = (x * 2 + 1) elementwise; order matters.
  ASSERT_TRUE(AddEwChain(in, out,
                         {EwStep::Unary(UnaryOp::kScale, 2.0),
                          EwStep::Unary(UnaryOp::kAddScalar, 1.0)},
                         &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  DenseMatrix expected =
      dx.Unary(UnaryOp::kScale, 2.0).Unary(UnaryOp::kAddScalar, 1.0);
  ExpectMatches(out, expected);
}

TEST_F(ExecTest, EwChainWithBinaryOperand) {
  TiledMatrix in{"X", TileLayout::Square(16, 16, 8)};
  TiledMatrix other{"Z", TileLayout::Square(16, 16, 8)};
  TiledMatrix out{"Y", TileLayout::Square(16, 16, 8)};
  DenseMatrix dx = MakeInput(in), dz = MakeInput(other);
  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(in, out, {EwStep::Binary(BinaryOp::kMul, "Z")},
                         &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto expected = dx.Binary(BinaryOp::kMul, dz);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(out, *expected);
}

TEST_F(ExecTest, EmptyEwChainCopies) {
  TiledMatrix in{"X", TileLayout::Square(10, 10, 4)};
  TiledMatrix out{"Y", TileLayout::Square(10, 10, 4)};
  DenseMatrix dx = MakeInput(in);
  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(in, out, {}, &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  ExpectMatches(out, dx);
}

TEST_F(ExecTest, EwChainRejectsLayoutMismatch) {
  TiledMatrix in{"X", TileLayout::Square(10, 10, 4)};
  TiledMatrix out{"Y", TileLayout::Square(10, 10, 5)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(in, out, {}, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(ExecTest, TransposeJobMatchesReference) {
  TiledMatrix in{"X", TileLayout(30, 18, 8, 6)};
  TiledMatrix out{"Y", TileLayout(18, 30, 6, 8)};
  DenseMatrix dx = MakeInput(in);
  PhysicalPlan plan;
  ASSERT_TRUE(AddTranspose(in, out, &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  ExpectMatches(out, dx.Transpose());
}

TEST_F(ExecTest, TransposeRejectsNonTransposedLayout) {
  TiledMatrix in{"X", TileLayout::Square(8, 6, 4)};
  TiledMatrix out{"Y", TileLayout::Square(8, 6, 4)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddTranspose(in, out, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(ExecTest, SumJobRequiresParts) {
  TiledMatrix out{"Y", TileLayout::Square(8, 8, 4)};
  PhysicalPlan plan;
  plan.jobs.push_back(std::make_unique<SumJob>("s", std::vector<std::string>{},
                                               out, std::vector<EwStep>{}));
  EXPECT_FALSE(executor_.Run(plan).ok());
}

// ---------------------------------------------------------------------------
// Simulation mode over the DFS store
// ---------------------------------------------------------------------------

TEST(ExecSimTest, SimulatedRunRegistersOutputPlacementAndCosts) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 4;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);

  TiledMatrix a{"A", TileLayout::Square(2048, 2048, 512)};
  TiledMatrix b{"B", TileLayout::Square(2048, 2048, 512)};
  TiledMatrix c{"C", TileLayout::Square(2048, 2048, 512)};
  for (const TiledMatrix& m : {a, b}) {
    for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
      for (int64_t col = 0; col < m.layout.grid_cols(); ++col) {
        ASSERT_TRUE(store.PutMeta(m.name, TileId{r, col},
                                  16 + 512 * 512 * 8, -1).ok());
      }
    }
  }

  ClusterConfig cluster{MachineProfile{"t", 2, 2.0, 100, 100, 0.1}, 4, 2};
  SimEngine engine(cluster, SimEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.real_mode = false;
  Executor executor(&store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  auto stats = executor.Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->total_seconds, 0.0);
  EXPECT_GT(stats->bytes_read, 0);
  EXPECT_GT(stats->bytes_written, 0);
  EXPECT_EQ(stats->total_tasks, 16);  // 4x4 C tiles, one per task
  // Output metadata registered: every C tile has hosting nodes.
  EXPECT_FALSE(store.PreferredNodes("C", TileId{3, 3}).empty());
}

TEST(ExecSimTest, BiggerBlocksReadFewerBytes) {
  // One task per C tile re-reads A rows per j; blocking amortizes reads.
  DfsOptions dfs_options;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  TiledMatrix a{"A", TileLayout::Square(4096, 4096, 512)};
  TiledMatrix b{"B", TileLayout::Square(4096, 4096, 512)};
  TileOpCostModel cost;
  BuildContext ctx{&store, &cost, /*attach_work=*/false,
                   /*query_locality=*/false};

  auto bytes_with = [&](int64_t bi, int64_t bj) -> int64_t {
    TiledMatrix c{"C", TileLayout::Square(4096, 4096, 512)};
    MatMulJob job("mm", a, b, c, MatMulParams{bi, bj, 0}, {});
    auto built = job.Build(ctx);
    CUMULON_CHECK(built.ok());
    int64_t total = 0;
    for (const Task& t : built->spec.tasks) total += t.cost.bytes_read;
    return total;
  };
  EXPECT_LT(bytes_with(2, 2), bytes_with(1, 1));
  EXPECT_LT(bytes_with(4, 4), bytes_with(2, 2));
}

TEST(ExecSimTest, JobStartupChargedPerJob) {
  SimDfs dfs(DfsOptions{});
  DfsTileStore store(&dfs);
  TiledMatrix a{"A", TileLayout::Square(512, 512, 512)};
  ASSERT_TRUE(store.PutMeta("A", TileId{0, 0}, 16 + 512 * 512 * 8, -1).ok());
  TiledMatrix out{"Y", TileLayout::Square(512, 512, 512)};

  ClusterConfig cluster{MachineProfile{}, 1, 1};
  SimEngine engine(cluster, SimEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.real_mode = false;
  exec_options.job_startup_seconds = 100.0;
  Executor executor(&store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(a, out, {EwStep::Unary(UnaryOp::kAbs)}, &plan).ok());
  auto stats = executor.Run(plan);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->total_seconds, 100.0);
  EXPECT_LT(stats->total_seconds, 200.0);
}

// ---------------------------------------------------------------------------
// EwStep unit behavior
// ---------------------------------------------------------------------------

TEST(EwStepTest, ApplyUnary) {
  Tile t(2, 2);
  FillTile(&t, 4.0);
  ASSERT_TRUE(ApplyEwStep(EwStep::Unary(UnaryOp::kSqrt), &t, nullptr).ok());
  EXPECT_DOUBLE_EQ(t.At(0, 0), 2.0);
}

TEST(EwStepTest, ApplyBinaryNeedsOperand) {
  Tile t(2, 2);
  EXPECT_FALSE(
      ApplyEwStep(EwStep::Binary(BinaryOp::kAdd, "m"), &t, nullptr).ok());
}

TEST(EwStepTest, SwappedBinaryReversesOperands) {
  Tile v(1, 1), other(1, 1);
  v.Set(0, 0, 3.0);
  other.Set(0, 0, 10.0);
  ASSERT_TRUE(ApplyEwStep(EwStep::Binary(BinaryOp::kSub, "m", true), &v,
                          &other).ok());
  EXPECT_DOUBLE_EQ(v.At(0, 0), 7.0);  // other - v
}

TEST(EwStepTest, ToStringIsInformative) {
  EXPECT_EQ(EwStep::Unary(UnaryOp::kScale, 2.0).ToString(), "scale(2)");
  EXPECT_EQ(EwStep::Binary(BinaryOp::kDiv, "D").ToString(), "div(v, D)");
  EXPECT_EQ(EwStep::Binary(BinaryOp::kSub, "D", true).ToString(),
            "sub(D, v)");
}

}  // namespace
}  // namespace cumulon
