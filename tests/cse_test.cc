#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/interpreter.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"
#include "verify/verify.h"

namespace cumulon {
namespace {

class CseTest : public ::testing::Test {
 protected:
  CseTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  DenseMatrix Bind(const std::string& name, int64_t rows, int64_t cols) {
    TiledMatrix m{name, TileLayout::Square(rows, cols, 8)};
    DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng_);
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    bindings_.insert_or_assign(name, m);
    dense_env_.insert_or_assign(name, dense);
    return dense;
  }

  LoweredProgram LowerIt(const Program& program, bool cse = true) {
    LoweringOptions lowering;
    lowering.tile_dim = 8;
    lowering.enable_cse = cse;
    auto lowered = Lower(program, bindings_, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    // CSE reuse must never break the plan invariants: full verifier pass
    // (dependencies, coverage, determinism) on every lowered plan.
    PlanVerifyOptions verify_options;
    verify_options.check_external = true;
    for (const auto& [name, matrix] : bindings_) {
      verify_options.external_matrices.insert(matrix.name);
    }
    verify_options.require_determinism = true;
    const VerifyReport report = VerifyPlan(lowered->plan, verify_options);
    CUMULON_CHECK(report.ok()) << report.ToString();
    return std::move(lowered).value();
  }

  Rng rng_{131};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
  std::map<std::string, TiledMatrix> bindings_;
  std::map<std::string, DenseMatrix> dense_env_;
};

TEST_F(CseTest, IdenticalSubexpressionsLowerOnce) {
  Bind("A", 16, 16);
  Program p;
  auto a = Expr::Input("A", 16, 16);
  // Both targets need A*A. (Fusion disabled so the shared product is a
  // materialized subexpression rather than two fused multiply jobs —
  // fused roots are target-specific and bypass CSE by design.)
  p.Assign("X", Scale(a * a, 2.0));
  p.Assign("Y", Scale(a * a, 3.0));
  auto lower_with = [&](bool cse) {
    LoweringOptions lowering;
    lowering.tile_dim = 8;
    lowering.enable_fusion = false;
    lowering.enable_cse = cse;
    auto lowered = Lower(p, bindings_, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    const VerifyReport report = VerifyPlan(lowered->plan);
    CUMULON_CHECK(report.ok()) << report.ToString();
    return lowered->plan.jobs.size();
  };
  EXPECT_LT(lower_with(true), lower_with(false));

  // And the shared plan still computes the right values.
  auto lowered = LowerIt(p, true);
  ASSERT_TRUE(executor_.Run(lowered.plan).ok());
  auto reference = EvalProgram(p, dense_env_);
  ASSERT_TRUE(reference.ok());
  auto y = LoadDense(lowered.outputs.at("Y"), &store_);
  ASSERT_TRUE(y.ok());
  auto diff = reference->at("Y").MaxAbsDiff(*y);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

/// Regression test for a real bug the GNMF iteration exposed: when an
/// assignment target shadows an input binding, a stale CSE entry keyed on
/// the *old* matrix must not satisfy lookups against the *new* version.
TEST_F(CseTest, ReassignmentInvalidatesValueIdentity) {
  DenseMatrix da = Bind("A", 8, 8);
  Program p;
  auto a = Expr::Input("A", 8, 8);
  // tmp = A^T used while A still has its original value...
  p.Assign("First", T(a) * a);
  // ...then A is *reassigned*...
  p.Assign("A", Scale(a, 2.0));
  // ...and A^T is needed again, now over the NEW A.
  p.Assign("Second", T(Expr::Input("A", 8, 8)) * Expr::Input("A", 8, 8));

  auto lowered = LowerIt(p, true);
  auto stats = executor_.Run(lowered.plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto reference = EvalProgram(p, dense_env_);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (const char* target : {"First", "A", "Second"}) {
    auto loaded = LoadDense(lowered.outputs.at(target), &store_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    auto diff = reference->at(target).MaxAbsDiff(*loaded);
    ASSERT_TRUE(diff.ok());
    EXPECT_LT(diff.value(), 1e-9) << target;
  }
  // In particular Second = (2A)^T (2A) = 4 * First.
  auto first = LoadDense(lowered.outputs.at("First"), &store_);
  auto second = LoadDense(lowered.outputs.at("Second"), &store_);
  ASSERT_TRUE(first.ok() && second.ok());
  auto scaled = first->Unary(UnaryOp::kScale, 4.0);
  auto diff = scaled.MaxAbsDiff(*second);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST_F(CseTest, TargetShadowingInputGetsVersionedName) {
  Bind("A", 8, 8);
  Program p;
  p.Assign("A", Scale(Expr::Input("A", 8, 8), 2.0));
  auto lowered = LowerIt(p);
  // The new value must not overwrite the caller's input matrix in place.
  EXPECT_EQ(lowered.outputs.at("A").name, "A@v1");
}

TEST_F(CseTest, SupersededVersionsBecomeTemporaries) {
  Bind("A", 8, 8);
  Program p;
  auto a = Expr::Input("A", 8, 8);
  p.Assign("X", Scale(a, 2.0));
  p.Assign("X", Scale(Expr::Input("X", 8, 8), 2.0));
  p.Assign("X", Scale(Expr::Input("X", 8, 8), 2.0));
  auto lowered = LowerIt(p);
  // X and X@v2 are garbage once X@v3 exists; the input A is not.
  int superseded = 0;
  for (const std::string& temp : lowered.plan.temporaries) {
    EXPECT_NE(temp, "A");
    EXPECT_NE(temp, lowered.outputs.at("X").name);
    if (temp == "X" || temp == "X@v2") ++superseded;
  }
  EXPECT_EQ(superseded, 2);

  ASSERT_TRUE(executor_.Run(lowered.plan).ok());
  // After the run only the final version remains.
  EXPECT_FALSE(store_.Get("X", TileId{0, 0}, -1).ok());
  EXPECT_TRUE(store_.Get("X@v3", TileId{0, 0}, -1).ok());
  EXPECT_TRUE(store_.Get("A", TileId{0, 0}, -1).ok());
}

TEST_F(CseTest, CseRespectsScalarDifferences) {
  Bind("A", 8, 8);
  Program p;
  auto a = Expr::Input("A", 8, 8);
  p.Assign("X", Scale(a, 2.0) + Scale(a, 3.0));
  auto lowered = LowerIt(p);
  ASSERT_TRUE(executor_.Run(lowered.plan).ok());
  auto reference = EvalProgram(p, dense_env_);
  ASSERT_TRUE(reference.ok());
  auto loaded = LoadDense(lowered.outputs.at("X"), &store_);
  ASSERT_TRUE(loaded.ok());
  auto diff = reference->at("X").MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

TEST_F(CseTest, GnmfIterationSharesTheTranspose) {
  GnmfSpec spec;
  spec.m = 16;
  spec.n = 12;
  spec.k = 4;
  Bind("V", spec.m, spec.n);
  Bind("W", spec.m, spec.k);
  Bind("H", spec.k, spec.n);
  auto count_transposes = [&](bool cse) {
    auto lowered = LowerIt(BuildGnmfIteration(spec), cse);
    int transposes = 0;
    for (const auto& job : lowered.plan.jobs) {
      if (job->DebugString().find("Transpose") != std::string::npos) {
        ++transposes;
      }
    }
    return transposes;
  };
  EXPECT_LT(count_transposes(true), count_transposes(false));
}

}  // namespace
}  // namespace cumulon
