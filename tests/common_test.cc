#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tile");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tile");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tile");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThenPropagates() {
  CUMULON_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

// ---------------------------------------------------------------------------
// Result
// ---------------------------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<std::string> Doubled(int x) {
  CUMULON_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return StrCat(v * 2);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "42");
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = Doubled(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatBytes(int64_t{5} * 1024 * 1024 * 1024), "5.0 GiB");
}

TEST(StringsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(0.25), "250ms");
  EXPECT_EQ(FormatDuration(42.0), "42.0s");
  EXPECT_EQ(FormatDuration(150.0), "2m30s");
  EXPECT_EQ(FormatDuration(7260.0), "2h01m");
}

TEST(StringsTest, FormatMoney) {
  EXPECT_EQ(FormatMoney(0.06), "$0.0600");
  EXPECT_EQ(FormatMoney(12.5), "$12.50");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BoundedUniformHitsAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, LogNormalMeanOneWhenMuCompensated) {
  Rng rng(13);
  const double sigma = 0.3;
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextLogNormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng fork = a.Fork();
  // The fork and the parent should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == fork.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------------
// Stopwatch & ThreadPool
// ---------------------------------------------------------------------------

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  // WaitIdle covers nested submissions because the queue refills before the
  // outer task retires.
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

}  // namespace
}  // namespace cumulon
