// Observability subsystem tests: counter/gauge/histogram correctness
// (including under concurrent ThreadPool writers — this file runs in the
// TSan CI job), tracer span-nesting invariants, Chrome trace_event JSON
// well-formedness, and the dual-accounting regression pinning the
// executor's cache figures to the TileCacheGroup's own counters.

#include "obs/metrics.h"
#include "obs/trace.h"

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "exec/report.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (validation only, no value tree). Enough to
// assert the Chrome export and the metrics dump are loadable by a real
// parser without shipping one into the test.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(s_[pos_ + i])) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(CounterTest, AddsAndFoldsShards) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
}

TEST(CounterTest, CorrectUnderConcurrentWriters) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter c;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(100);
  g.Add(-30);
  EXPECT_EQ(g.Value(), 70);
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, TracksCountSumMinMaxExactly) {
  Histogram h;
  for (double v : {0.5, 2.0, 8.0, 8.0}) h.Observe(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 18.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 18.5 / 4);
}

TEST(HistogramTest, PercentilesAreFactorOfTwoUpperBounds) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(3.0);  // true p50 = p99 = 3
  const HistogramSnapshot s = h.Snapshot();
  // Upper edge of 3.0's power-of-two bucket (2, 4].
  EXPECT_GE(s.p50, 3.0);
  EXPECT_LE(s.p50, 4.0);
  EXPECT_GE(s.p99, 3.0);
  EXPECT_LE(s.p99, 4.0);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Histogram h;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.5);
    });
  }
  pool.WaitIdle();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, 1.5 * kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("y"), a);
  // Kinds live in separate name spaces.
  EXPECT_NE(static_cast<void*>(registry.gauge("x")), static_cast<void*>(a));
}

TEST(MetricsRegistryTest, SnapshotAndDelta) {
  MetricsRegistry registry;
  registry.counter("ops")->Add(10);
  registry.gauge("level")->Set(3);
  const MetricsSnapshot before = registry.Snapshot();
  registry.counter("ops")->Add(5);
  registry.counter("fresh")->Add(2);
  registry.gauge("level")->Set(7);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = SnapshotDelta(before, after);
  EXPECT_EQ(delta.counters.at("ops"), 5);
  EXPECT_EQ(delta.counters.at("fresh"), 2);  // absent before = from zero
  EXPECT_EQ(delta.gauges.at("level"), 7);    // gauges keep `after`
  EXPECT_EQ(delta.CounterOr("ops", -1), 5);
  EXPECT_EQ(delta.CounterOr("missing", -1), -1);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndUpdate) {
  constexpr int kThreads = 8;
  MetricsRegistry registry;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&registry] {
      for (int i = 0; i < 2000; ++i) {
        registry.counter("shared")->Increment();
        registry.histogram("lat")->Observe(0.25);
      }
    });
  }
  pool.WaitIdle();
  const MetricsSnapshot s = registry.Snapshot();
  EXPECT_EQ(s.counters.at("shared"), 8 * 2000);
  EXPECT_EQ(s.histograms.at("lat").count, 8 * 2000);
}

TEST(MetricsSnapshotTest, ToJsonIsValidJson) {
  MetricsRegistry registry;
  registry.counter("dfs.read.ops")->Add(12);
  registry.gauge("cache.resident_bytes")->Set(1 << 20);
  registry.histogram("task.seconds")->Observe(1.25);
  const std::string json = registry.Snapshot().ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"dfs.read.ops\""), std::string::npos);
}

TEST(ReportTest, FormatMetricsListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("a.ops")->Add(3);
  registry.gauge("b.level")->Set(9);
  registry.histogram("c.seconds")->Observe(2.0);
  const std::string text = FormatMetrics(registry.Snapshot());
  EXPECT_NE(text.find("a.ops"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);
  EXPECT_NE(text.find("c.seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, AssignsIncreasingIdsAndKeepsOrder) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  TraceSpan a;
  a.name = "first";
  TraceSpan b;
  b.name = "second";
  const int64_t ia = tracer.AddSpan(a);
  const int64_t ib = tracer.AddSpan(b);
  EXPECT_GT(ia, 0);
  EXPECT_GT(ib, ia);
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].name, "second");
}

TEST(TracerTest, TaskSpansNestUnderOpenJob) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  const int64_t job = tracer.BeginJob("mm");

  TraceSpan task;
  task.name = "task 0";
  task.category = "task";
  task.machine = 0;
  task.start_seconds = 0.0;
  task.duration_seconds = 2.0;
  const int64_t task_id = tracer.AddSpan(task);

  tracer.AdvanceTime(5.0);  // the engine advances by the job makespan
  tracer.EndJob(job);

  // A span recorded after the job closed is top-level again.
  TraceSpan stray;
  stray.name = "outside";
  const int64_t stray_id = tracer.AddSpan(stray);

  for (const TraceSpan& s : tracer.spans()) {
    if (s.id == task_id) {
      EXPECT_EQ(s.parent_id, job);
    }
    if (s.id == job) {
      EXPECT_EQ(s.parent_id, 0);
      EXPECT_DOUBLE_EQ(s.start_seconds, 0.0);
      EXPECT_DOUBLE_EQ(s.duration_seconds, 5.0);  // offset advance
    }
    if (s.id == stray_id) {
      EXPECT_EQ(s.parent_id, 0);
    }
  }
}

TEST(TracerTest, ConsecutiveJobsStackOnTheTimeline) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  const int64_t j1 = tracer.BeginJob("one");
  tracer.AdvanceTime(3.0);
  tracer.EndJob(j1);
  const int64_t j2 = tracer.BeginJob("two");
  tracer.AdvanceTime(4.0);
  tracer.EndJob(j2);
  EXPECT_DOUBLE_EQ(tracer.time_offset(), 7.0);

  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].end_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(spans[1].start_seconds, 3.0);
  EXPECT_DOUBLE_EQ(spans[1].end_seconds(), 7.0);
}

TEST(TracerTest, ThreadSafeUnderConcurrentAddSpan) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  Tracer tracer;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan s;
        s.name = "t";
        s.machine = t;
        s.duration_seconds = 0.001;
        tracer.AddSpan(s);
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(tracer.span_count(), int64_t{kThreads} * kPerThread);
}

TEST(TracerTest, ChromeExportIsValidJsonWithOneEventPerSpan) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  const int64_t job = tracer.BeginJob("mm \"quoted\" name\\with\nspecials");
  TraceSpan task;
  task.name = "task";
  task.category = "task";
  task.machine = 2;
  task.slot = 1;
  task.start_seconds = 0.5;
  task.duration_seconds = 1.5;
  task.args.emplace_back("bytes_read", 4096.0);
  tracer.AddSpan(task);
  tracer.AdvanceTime(2.0);
  tracer.EndJob(job);

  const std::string json = tracer.ToChromeJson();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Valid()) << json;

  // One "X" complete event per span, plus metadata events.
  size_t x_events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       ++pos) {
    ++x_events;
  }
  EXPECT_EQ(x_events, static_cast<size_t>(tracer.span_count()));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\""), std::string::npos);
  EXPECT_NE(json.find("\"virtual\""), std::string::npos);
}

TEST(TracerTest, GlobalTracerInstallAndReset) {
  EXPECT_EQ(GlobalTracer(), nullptr);
  Tracer tracer;
  SetGlobalTracer(&tracer);
  EXPECT_EQ(GlobalTracer(), &tracer);
  SetGlobalTracer(nullptr);
  EXPECT_EQ(GlobalTracer(), nullptr);
}

// ---------------------------------------------------------------------------
// Dual accounting: the executor's cache figures, the exec.cache.* metrics,
// and the TileCacheGroup's own counters must tell the same story for one
// real-mode run.
// ---------------------------------------------------------------------------

TEST(DualAccountingTest, ExecutorCacheFiguresMatchTileCacheCounters) {
  DfsOptions dfs_options;
  dfs_options.num_nodes = 4;
  dfs_options.replication = 2;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  MetricsRegistry metrics;
  store.AttachMetrics(&metrics);

  TiledMatrix a{"A", TileLayout::Square(256, 256, 64)};
  TiledMatrix b{"B", TileLayout::Square(256, 256, 64)};
  TiledMatrix c{"C", TileLayout::Square(256, 256, 64)};
  Rng rng(7);
  ASSERT_TRUE(GenerateMatrix(a, FillKind::kGaussian, 0, &rng, &store).ok());
  ASSERT_TRUE(GenerateMatrix(b, FillKind::kGaussian, 0, &rng, &store).ok());

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngineOptions engine_options;
  engine_options.enable_tile_cache = true;
  engine_options.cache_bytes_per_node = 64 << 20;
  RealEngine engine(cluster, engine_options);
  store.AttachCaches(engine.tile_caches());

  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  exec_options.metrics = &metrics;
  Executor executor(&store, &engine, &cost, exec_options);
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan).ok());
  auto stats = executor.Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  const TileCacheStats cache_totals = engine.tile_caches()->TotalStats();
  store.AttachCaches(nullptr);
  ASSERT_GT(cache_totals.hits, 0) << "cache never hit; test is vacuous";

  // Executor-reported figures == the cache group's own counters.
  EXPECT_EQ(stats->cache_hits, cache_totals.hits);
  EXPECT_EQ(stats->cache_misses, cache_totals.misses);
  EXPECT_EQ(stats->bytes_read_cached, cache_totals.hit_bytes);

  // == the run's metric deltas, through both counter families: the
  // executor's exec.cache.* fold and the store's own cache.* counters.
  EXPECT_EQ(stats->metrics.CounterOr("exec.cache.hits", -1),
            cache_totals.hits);
  EXPECT_EQ(stats->metrics.CounterOr("exec.cache.misses", -1),
            cache_totals.misses);
  EXPECT_EQ(stats->metrics.CounterOr("exec.cache.hit_bytes", -1),
            cache_totals.hit_bytes);
  EXPECT_EQ(stats->metrics.CounterOr("cache.hits", -1), cache_totals.hits);
  EXPECT_EQ(stats->metrics.CounterOr("cache.misses", -1),
            cache_totals.misses);
  EXPECT_EQ(stats->metrics.CounterOr("cache.hit_bytes", -1),
            cache_totals.hit_bytes);

  // The resident-footprint gauges mirror the group's live state at the
  // end of the run.
  const MetricsSnapshot end = metrics.Snapshot();
  EXPECT_EQ(end.gauges.at("cache.resident_bytes"),
            cache_totals.resident_bytes);
  EXPECT_EQ(end.gauges.at("cache.resident_tiles"),
            cache_totals.resident_tiles);
}

}  // namespace
}  // namespace cumulon
