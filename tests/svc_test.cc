#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/catalog.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/loadgen.h"
#include "svc/message.h"
#include "svc/service.h"
#include "svc/session.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, BuildsAndSerializesObjects) {
  JsonValue frame = JsonValue::Object();
  frame.Set("type", "SUBMIT").Set("plan", 42).Set("ok", true).Set("x", 1.5);
  EXPECT_EQ(frame.ToString(),
            "{\"type\":\"SUBMIT\",\"plan\":42,\"ok\":true,\"x\":1.5}");
}

TEST(JsonTest, RoundTripsNestedDocuments) {
  const std::string text =
      "{\"a\":[1,2,{\"b\":null}],\"s\":\"he said \\\"hi\\\"\",\"n\":-3.25}";
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("a")->items().size(), 3u);
  EXPECT_EQ(parsed->StringOr("s", ""), "he said \"hi\"");
  EXPECT_EQ(parsed->NumberOr("n", 0.0), -3.25);
  // Serialize -> parse again -> identical serialization (stable order).
  auto again = ParseJson(parsed->ToString());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->ToString(), parsed->ToString());
}

TEST(JsonTest, IntegersSurviveWithoutExponents) {
  JsonValue v = JsonValue::Object();
  v.Set("id", static_cast<int64_t>(1234567890123LL));
  auto parsed = ParseJson(v.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->IntOr("id", 0), 1234567890123LL);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  // Depth bomb stays an error, not a stack overflow.
  std::string bomb;
  for (int i = 0; i < 1000; ++i) bomb += "[";
  EXPECT_FALSE(ParseJson(bomb).ok());
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  auto parsed = ParseJson("{\"s\":\"\\u0041\\u00e9\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->StringOr("s", ""), "A\xc3\xa9");
}

// ---------------------------------------------------------------------------
// Typed errors and message codecs
// ---------------------------------------------------------------------------

TEST(MessageTest, TypedErrorRoundTripsThroughErrorFrame) {
  const Status status = TypedError(StatusCode::kResourceExhausted,
                                   "quota.inflight", "tenant at limit");
  EXPECT_EQ(ErrorReason(status), "quota.inflight");
  EXPECT_EQ(ErrorText(status), "tenant at limit");

  const JsonValue frame = EncodeError(status, /*plan_id=*/7);
  EXPECT_EQ(frame.StringOr("type", ""), "ERROR");
  EXPECT_EQ(frame.StringOr("reason", ""), "quota.inflight");
  EXPECT_EQ(frame.IntOr("plan", 0), 7);

  const Status decoded = DecodeError(frame);
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrorReason(decoded), "quota.inflight");
  EXPECT_EQ(ErrorText(decoded), "tenant at limit");
}

TEST(MessageTest, PlainStatusReadsAsInternalReason) {
  EXPECT_EQ(ErrorReason(Status::Internal("boom")), "internal");
  EXPECT_EQ(ErrorText(Status::Internal("boom")), "boom");
}

TEST(MessageTest, QueuedPlansRoundTrip) {
  std::vector<SubmitRequest> plans(2);
  plans[0].tenant = "alice";
  plans[0].name = "nightly";
  plans[0].workload = "mm-m";
  plans[0].deadline_seconds = 600.0;
  plans[1].tenant = "bob";
  plans[1].workload = "rsvd";
  plans[1].budget_dollars = 12.5;

  const std::string text = EncodeQueuedPlans(plans);
  auto decoded = DecodeQueuedPlans(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].tenant, "alice");
  EXPECT_EQ((*decoded)[0].name, "nightly");
  EXPECT_EQ((*decoded)[0].workload, "mm-m");
  EXPECT_EQ((*decoded)[0].deadline_seconds, 600.0);
  EXPECT_EQ((*decoded)[1].tenant, "bob");
  EXPECT_EQ((*decoded)[1].budget_dollars, 12.5);

  EXPECT_FALSE(DecodeQueuedPlans("{\"v\":99,\"plans\":[]}").ok());
  EXPECT_FALSE(DecodeQueuedPlans("not json").ok());
}

TEST(MessageTest, SubmitRequestRequiresWorkload) {
  JsonValue frame = JsonValue::Object();
  frame.Set("tenant", "t");
  auto decoded = SubmitRequest::FromJson(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(ErrorReason(decoded.status()), "proto.malformed");
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(CatalogTest, EveryListedClassBuilds) {
  for (const std::string& name : CatalogWorkloads()) {
    auto spec = MakeCatalogWorkload(name, /*scale=*/0.25, /*tile_dim=*/2048);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status();
    EXPECT_FALSE(spec->inputs.empty()) << name;
  }
  EXPECT_FALSE(MakeCatalogWorkload("nonsense", 1.0, 2048).ok());
}

TEST(CatalogTest, MatMulLadderIgnoresScaleAndPrefixesInputs) {
  auto a = MakeCatalogWorkload("mm-s", 1.0, 2048);
  auto b = MakeCatalogWorkload("mm-s", 0.01, 2048);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->inputs.size(), b->inputs.size());
  for (size_t i = 0; i < a->inputs.size(); ++i) {
    EXPECT_EQ(a->inputs[i].name, b->inputs[i].name);
    EXPECT_EQ(a->inputs[i].name.rfind("mm_s_", 0), 0u)
        << a->inputs[i].name;
  }
}

// ---------------------------------------------------------------------------
// Sessions and quotas
// ---------------------------------------------------------------------------

TEST(SessionTest, OpenAuthMapsTokenToTenant) {
  SessionManager sessions((SessionOptions()));
  auto id = sessions.Open(kProtocolVersion, "alice");
  ASSERT_TRUE(id.ok()) << id.status();
  auto tenant = sessions.TenantOf(*id);
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(*tenant, "alice");
  EXPECT_EQ(sessions.open_sessions(), 1);
  sessions.Close(*id);
  EXPECT_EQ(sessions.open_sessions(), 0);
  EXPECT_EQ(ErrorReason(sessions.TenantOf(*id).status()),
            "auth.unknown_session");
}

TEST(SessionTest, ClosedAuthRejectsUnknownTokens) {
  SessionOptions options;
  options.open_auth = false;
  options.tokens = {{"secret-1", "alice"}, {"secret-2", "alice"}};
  SessionManager sessions(options);
  EXPECT_EQ(ErrorReason(sessions.Open(kProtocolVersion, "alice").status()),
            "auth.unknown_token");
  auto id = sessions.Open(kProtocolVersion, "secret-2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*sessions.TenantOf(*id), "alice");
}

TEST(SessionTest, RejectsWrongProtocolVersion) {
  SessionManager sessions((SessionOptions()));
  auto id = sessions.Open(kProtocolVersion + 1, "alice");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(ErrorReason(id.status()), "proto.version");
}

TEST(SessionTest, InflightQuotaEnforcedAcrossSessionsOfOneTenant) {
  SessionOptions options;
  options.default_quota.max_inflight_plans = 2;
  SessionManager sessions(options);
  ASSERT_TRUE(sessions.Open(kProtocolVersion, "alice").ok());
  ASSERT_TRUE(sessions.Open(kProtocolVersion, "alice").ok());  // 2nd conn

  EXPECT_TRUE(sessions.AdmitCheck("alice", 0.1).ok());
  sessions.OnAdmitted("alice", 0.1);
  sessions.OnAdmitted("alice", 0.1);
  const Status full = sessions.AdmitCheck("alice", 0.1);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrorReason(full), "quota.inflight");
  // Quota is per tenant, not per session: a different tenant is fine.
  EXPECT_TRUE(sessions.AdmitCheck("bob", 0.1).ok());
  // Finishing a plan frees the slot.
  sessions.OnFinished("alice");
  EXPECT_TRUE(sessions.AdmitCheck("alice", 0.1).ok());
}

TEST(SessionTest, AggregateBudgetQuotaStaysSpent) {
  SessionOptions options;
  options.tenant_quotas["cheap"] = TenantQuota{8, 1.0};
  SessionManager sessions(options);
  EXPECT_TRUE(sessions.AdmitCheck("cheap", 0.6).ok());
  sessions.OnAdmitted("cheap", 0.6);
  const Status over = sessions.AdmitCheck("cheap", 0.6);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(ErrorReason(over), "quota.budget");
  // The budget is an aggregate: finishing does NOT refund it.
  sessions.OnFinished("cheap");
  EXPECT_EQ(ErrorReason(sessions.AdmitCheck("cheap", 0.6)), "quota.budget");
  // But a plan that still fits is admitted.
  EXPECT_TRUE(sessions.AdmitCheck("cheap", 0.3).ok());
}

// ---------------------------------------------------------------------------
// Service end-to-end over the in-process transport
// ---------------------------------------------------------------------------

/// Polls until the plan is terminal (the reaper runs every ~2 ms).
ServiceClient::PollReply PollToTerminal(ServiceClient* client, int64_t plan) {
  ServiceClient::PollReply poll;
  for (int i = 0; i < 5000; ++i) {
    auto reply = client->Poll(plan);
    EXPECT_TRUE(reply.ok()) << reply.status();
    if (!reply.ok()) break;
    poll = *reply;
    if (poll.terminal) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return poll;
}

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.machine.name = "test.machine";
  options.machine.cores = 2;
  options.elastic.min_machines = 1;
  options.elastic.max_machines = 4;
  options.slots_per_machine = 2;
  options.max_concurrent_plans = 2;
  options.reaper_interval_seconds = 0.002;
  options.elastic_interval_seconds = 0.01;
  return options;
}

TEST(ServiceTest, SubmitPollResultLifecycle) {
  CumulonService service(SmallServiceOptions());
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());
  EXPECT_GT(client.session(), 0);
  EXPECT_EQ(client.tenant(), "alice");

  auto submit = client.Submit("mm-s");
  ASSERT_TRUE(submit.ok()) << submit.status();
  EXPECT_GT(submit->plan, 0);
  EXPECT_GT(submit->estimate_seconds, 0.0);

  const ServiceClient::PollReply poll = PollToTerminal(&client, submit->plan);
  ASSERT_TRUE(poll.terminal);
  EXPECT_EQ(poll.state, "DONE");
  EXPECT_GT(poll.cursor, 1);

  // RESULT carries the final PlanStats.
  JsonValue result_req = JsonValue::Object();
  result_req.Set("type", "RESULT")
      .Set("session", client.session())
      .Set("plan", submit->plan);
  const JsonValue result = service.Dispatch(result_req);
  EXPECT_EQ(result.StringOr("type", ""), "RESULT_OK");
  EXPECT_EQ(result.StringOr("state", ""), "DONE");
  EXPECT_GT(result.NumberOr("sim_seconds", 0.0), 0.0);
  EXPECT_GT(result.IntOr("total_tasks", 0), 0);

  auto persisted = client.Drain();
  ASSERT_TRUE(persisted.ok()) << persisted.status();
  EXPECT_EQ(*persisted, 0);
  EXPECT_EQ(service.metrics()->counter("svc.submit.accepted")->Value(), 1);
}

TEST(ServiceTest, CursorChangesOnlyOnStateTransitions) {
  ServiceOptions options = SmallServiceOptions();
  options.defer_start = true;  // pin the plan in QUEUED
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());
  auto submit = client.Submit("mm-s");
  ASSERT_TRUE(submit.ok()) << submit.status();

  auto first = client.Poll(submit->plan, /*cursor=*/0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->state, "QUEUED");
  EXPECT_TRUE(first->changed);  // cursor 0 -> server cursor
  auto second = client.Poll(submit->plan, first->cursor);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->changed);  // nothing moved since
  client.Drain().IgnoreError();
}

TEST(ServiceTest, RejectsOverQuotaSubmitWithTypedError) {
  ServiceOptions options = SmallServiceOptions();
  options.defer_start = true;  // keep plans in flight deterministically
  options.session.default_quota.max_inflight_plans = 1;
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("greedy").ok());

  ASSERT_TRUE(client.Submit("mm-s").ok());
  auto second = client.Submit("mm-s");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrorReason(second.status()), "quota.inflight");
  EXPECT_EQ(
      service.metrics()->counter("svc.submit.rejected.quota")->Value(), 1);

  // The rejection got a pollable terminal record with the verdict.
  auto rejected = client.Poll(/*plan=*/2);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->state, "REJECTED");
  client.Drain().IgnoreError();
}

TEST(ServiceTest, RejectsCorruptedPlanWithTypedVerifyError) {
  // SUBMIT carries catalog workload names, so the only way to reach the
  // daemon with a broken plan is a miscompile between lowering and
  // admission — injected here through the test-only plan mutator. The
  // verifier must refuse it before the manager ever sees it, with the
  // typed verify.* reason on the wire.
  ServiceOptions options = SmallServiceOptions();
  options.plan_mutator_for_test = [](PhysicalPlan* plan) {
    // Strip the determinism contract Lower() just stamped — the smallest
    // corruption every lowered plan is guaranteed to carry.
    plan->determinism = {};
  };
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());

  auto submit = client.Submit("mm-s");
  ASSERT_FALSE(submit.ok());
  EXPECT_EQ(submit.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ErrorReason(submit.status()).rfind("verify.", 0), 0u)
      << ErrorReason(submit.status());
  EXPECT_EQ(
      service.metrics()->counter("svc.submit.rejected.verify")->Value(), 1);
  // Rejected pre-admission: the manager never counted a submission.
  EXPECT_EQ(service.metrics()->counter("sched.admitted")->Value(), 0);
  EXPECT_EQ(service.metrics()->counter("svc.submit.accepted")->Value(), 0);

  // The verdict is pollable, like every other rejection.
  auto rejected = client.Poll(/*plan=*/1);
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->state, "REJECTED");
  client.Drain().IgnoreError();
}

TEST(ServiceTest, RejectsUnknownWorkloadAndForeignPlans) {
  ServiceOptions options = SmallServiceOptions();
  options.defer_start = true;
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient alice(&transport);
  ServiceClient bob(&transport);
  ASSERT_TRUE(alice.Hello("alice").ok());
  ASSERT_TRUE(bob.Hello("bob").ok());

  auto unknown = alice.Submit("quantum-matmul");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(ErrorReason(unknown.status()), "workload.unknown");

  auto submit = alice.Submit("mm-s");
  ASSERT_TRUE(submit.ok());
  auto foreign = bob.Poll(submit->plan);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(ErrorReason(foreign.status()), "plan.foreign");
  auto missing = alice.Poll(99999);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(ErrorReason(missing.status()), "plan.unknown");
  alice.Drain().IgnoreError();
}

TEST(ServiceTest, HelloVersionAndSessionChecks) {
  CumulonService service(SmallServiceOptions());
  JsonValue hello = JsonValue::Object();
  hello.Set("type", "HELLO").Set("v", 99).Set("token", "x");
  const JsonValue reply = service.Dispatch(hello);
  EXPECT_EQ(reply.StringOr("type", ""), "ERROR");
  EXPECT_EQ(reply.StringOr("reason", ""), "proto.version");

  JsonValue submit = JsonValue::Object();
  submit.Set("type", "SUBMIT").Set("session", 12345).Set("workload", "mm-s");
  const JsonValue bad_session = service.Dispatch(submit);
  EXPECT_EQ(bad_session.StringOr("reason", ""), "auth.unknown_session");

  JsonValue nonsense = JsonValue::Object();
  nonsense.Set("type", "TELEPORT");
  EXPECT_EQ(service.Dispatch(nonsense).StringOr("reason", ""),
            "proto.malformed");
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("x").ok());
  client.Drain().IgnoreError();
}

TEST(ServiceTest, CancelQueuedPlan) {
  ServiceOptions options = SmallServiceOptions();
  options.defer_start = true;
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());
  auto submit = client.Submit("mm-s");
  ASSERT_TRUE(submit.ok());
  ASSERT_TRUE(client.Cancel(submit->plan).ok());

  const ServiceClient::PollReply poll = PollToTerminal(&client, submit->plan);
  ASSERT_TRUE(poll.terminal);
  EXPECT_EQ(poll.state, "CANCELLED");
  // Cancelling a finished plan is a typed error.
  auto again = client.Cancel(submit->plan);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(ErrorReason(again), "plan.terminal");
  client.Drain().IgnoreError();
}

TEST(ServiceTest, StatsReportQueueAndFleet) {
  ServiceOptions options = SmallServiceOptions();
  options.defer_start = true;
  CumulonService service(options);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());
  ASSERT_TRUE(client.Submit("mm-s").ok());
  ASSERT_TRUE(client.Submit("mm-m").ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->StringOr("type", ""), "STATS_OK");
  EXPECT_EQ(stats->IntOr("inflight", 0), 2);
  EXPECT_EQ(stats->IntOr("sessions", 0), 1);
  EXPECT_GE(stats->IntOr("fleet_machines", 0), 1);
  EXPECT_GE(stats->IntOr("fleet_slots", 0), 2);
  EXPECT_FALSE(stats->BoolOr("draining", true));
  client.Drain().IgnoreError();
}

// ---------------------------------------------------------------------------
// Drain persistence and restore
// ---------------------------------------------------------------------------

class ServiceDrainTest : public ::testing::Test {
 protected:
  ServiceDrainTest() {
    state_dir_ = testing::TempDir() + "svc_drain_test";
    std::remove((state_dir_ + "/queued_plans.json").c_str());
    (void)mkdir(state_dir_.c_str(), 0755);
  }

  std::string state_dir_;
};

TEST_F(ServiceDrainTest, DrainPersistsQueuedPlansAndRestartRestoresThem) {
  ServiceOptions options = SmallServiceOptions();
  options.state_dir = state_dir_;
  options.defer_start = true;  // every admitted plan stays queued

  int64_t persisted = 0;
  {
    CumulonService service(options);
    LocalTransport transport(&service);
    ServiceClient client(&transport);
    ASSERT_TRUE(client.Hello("alice").ok());
    ASSERT_TRUE(client.Submit("mm-s", "job-a").ok());
    ASSERT_TRUE(client.Submit("mm-m", "job-b", /*deadline_seconds=*/3600.0)
                    .ok());

    // Submissions are refused while draining / after drain.
    auto drained = client.Drain();
    ASSERT_TRUE(drained.ok()) << drained.status();
    persisted = *drained;
    EXPECT_EQ(persisted, 2);
    auto late = client.Submit("mm-s");
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(ErrorReason(late.status()), "draining");
    EXPECT_EQ(service.metrics()->counter("svc.drain.persisted")->Value(), 2);
    // Drain is idempotent once complete.
    auto again = client.Drain();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, persisted);
  }

  // Restart on the same state dir: the queued specs come back through the
  // full admission path and then run to completion.
  ServiceOptions restart = SmallServiceOptions();
  restart.state_dir = state_dir_;
  CumulonService service(restart);
  EXPECT_EQ(service.restored_plans(), 2);
  EXPECT_EQ(service.metrics()->counter("svc.restore.restored")->Value(), 2);

  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("alice").ok());
  // The restored records are pollable under their persisted names.
  const ServiceClient::PollReply poll = PollToTerminal(&client, 1);
  EXPECT_EQ(poll.state, "DONE");
  // The drain file was consumed: a third daemon starts fresh.
  client.Drain().IgnoreError();
  CumulonService fresh(restart);
  EXPECT_EQ(fresh.restored_plans(), 0);
}

TEST_F(ServiceDrainTest, RestoreReappliesAdmissionDecisions) {
  // A quota that admits exactly one of the two persisted plans must make
  // the same split after the restart: restored submissions go through
  // SubmitInternal like fresh ones.
  ServiceOptions options = SmallServiceOptions();
  options.state_dir = state_dir_;
  options.defer_start = true;
  {
    CumulonService service(options);
    LocalTransport transport(&service);
    ServiceClient client(&transport);
    ASSERT_TRUE(client.Hello("alice").ok());
    ASSERT_TRUE(client.Submit("mm-s").ok());
    ASSERT_TRUE(client.Submit("mm-s").ok());
    auto drained = client.Drain();
    ASSERT_TRUE(drained.ok());
    ASSERT_EQ(*drained, 2);
  }

  ServiceOptions restart = SmallServiceOptions();
  restart.state_dir = state_dir_;
  restart.defer_start = true;
  restart.session.default_quota.max_inflight_plans = 1;
  CumulonService service(restart);
  // Same admission logic, tighter quota: exactly one restored plan fits.
  EXPECT_EQ(service.restored_plans(), 1);
  EXPECT_EQ(service.metrics()->counter("svc.restore.restored")->Value(), 1);
  EXPECT_EQ(service.metrics()->counter("svc.restore.rejected")->Value(), 1);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("ops").ok());
  client.Drain().IgnoreError();
}

TEST_F(ServiceDrainTest, CorruptDrainFileIsIgnored) {
  {
    std::FILE* f =
        std::fopen((state_dir_ + "/queued_plans.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{corrupt", f);
    std::fclose(f);
  }
  ServiceOptions options = SmallServiceOptions();
  options.state_dir = state_dir_;
  CumulonService service(options);
  EXPECT_EQ(service.restored_plans(), 0);
}

// ---------------------------------------------------------------------------
// Load generator plumbing
// ---------------------------------------------------------------------------

TEST(LoadGenTest, ExactPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_EQ(ExactPercentile(v, 0.50), 50.0);
  EXPECT_EQ(ExactPercentile(v, 0.99), 99.0);
  EXPECT_EQ(ExactPercentile(v, 1.0), 100.0);
  EXPECT_EQ(ExactPercentile({}, 0.5), 0.0);
  EXPECT_EQ(ExactPercentile({7.0}, 0.99), 7.0);
}

TEST(LoadGenTest, ClosedLoopAgainstLocalService) {
  CumulonService service(SmallServiceOptions());
  LoadGenOptions options;
  options.tenants = 8;
  options.total_submissions = 40;
  options.workers = 4;
  options.think_mean_seconds = 0.0;
  options.workload_mix = {{"mm-s", 1.0}};
  auto report = RunLoadGen(
      [&]() -> Result<std::unique_ptr<Transport>> {
        return std::unique_ptr<Transport>(new LocalTransport(&service));
      },
      options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->submitted, 40);
  EXPECT_EQ(report->accepted + report->rejected_quota +
                report->rejected_admission + report->rejected_draining +
                report->rejected_other + report->transport_errors,
            40);
  EXPECT_EQ(report->completed + report->failed + report->cancelled +
                report->poll_timeouts,
            report->accepted);
  EXPECT_GT(report->accepted, 0);
  EXPECT_GT(report->admission_p99_seconds, 0.0);
  EXPECT_GE(report->admission_p99_seconds, report->admission_p50_seconds);
  LocalTransport transport(&service);
  ServiceClient client(&transport);
  ASSERT_TRUE(client.Hello("ops").ok());
  client.Drain().IgnoreError();
}

}  // namespace
}  // namespace cumulon
