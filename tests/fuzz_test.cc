// Randomized differential test: generate random well-shaped programs,
// lower and execute them on the real engine (with and without fusion,
// with chain optimization), and compare against the single-node
// interpreter. This sweeps lowering-path combinations (fusion spines,
// broadcasts, aggregates, transposes, chain reordering, CSE) no
// hand-written test enumerates.

#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/interpreter.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"
#include "obs/trace.h"
#include "verify/verify.h"

namespace cumulon {
namespace {

constexpr int64_t kTile = 8;

/// Generates random expressions of a requested shape, creating Gaussian
/// input matrices on demand.
class ExprGenerator {
 public:
  explicit ExprGenerator(uint64_t seed) : rng_(seed) {}

  ExprPtr Generate(int depth, int64_t rows, int64_t cols) {
    if (depth <= 0) return MakeInput(rows, cols);
    switch (rng_.NextUint64(12)) {
      case 0:
      case 1:
        return MakeInput(rows, cols);
      case 2: {  // benign unary
        static const UnaryOp kOps[] = {UnaryOp::kScale, UnaryOp::kAddScalar,
                                       UnaryOp::kAbs, UnaryOp::kSigmoid};
        return Expr::EwUnary(kOps[rng_.NextUint64(4)],
                             Generate(depth - 1, rows, cols),
                             rng_.NextDouble(-2, 2));
      }
      case 3:
      case 4: {  // same-shape binary (no division: operands can be ~0)
        static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                        BinaryOp::kMul, BinaryOp::kMax,
                                        BinaryOp::kMin};
        auto e = Expr::EwBinary(kOps[rng_.NextUint64(5)],
                                Generate(depth - 1, rows, cols),
                                Generate(depth - 1, rows, cols));
        CUMULON_CHECK(e.ok()) << e.status();
        return std::move(e).value();
      }
      case 5: {  // broadcast binary (only when the shape is a true matrix)
        if (rows == 1 || cols == 1) return MakeInput(rows, cols);
        const bool row_vector = rng_.NextUint64(2) == 0;
        auto vec = row_vector ? Generate(depth - 1, 1, cols)
                              : Generate(depth - 1, rows, 1);
        auto full = Generate(depth - 1, rows, cols);
        const bool vector_left = rng_.NextUint64(2) == 0;
        auto e = vector_left
                     ? Expr::EwBinary(BinaryOp::kAdd, vec, full)
                     : Expr::EwBinary(BinaryOp::kSub, full, vec);
        CUMULON_CHECK(e.ok()) << e.status();
        return std::move(e).value();
      }
      case 6:
      case 7: {  // multiply through a random inner dimension
        const int64_t k = PickDim();
        auto e = Expr::MatMul(Generate(depth - 1, rows, k),
                              Generate(depth - 1, k, cols));
        CUMULON_CHECK(e.ok()) << e.status();
        return std::move(e).value();
      }
      case 8:
        return Expr::Transpose(Generate(depth - 1, cols, rows));
      case 9: {  // aggregates when the target shape is a vector
        if (cols == 1) {
          return Expr::RowSums(Generate(depth - 1, rows, PickDim()));
        }
        if (rows == 1) {
          return Expr::ColSums(Generate(depth - 1, PickDim(), cols));
        }
        return MakeInput(rows, cols);
      }
      default:  // nested chain: unary over binary keeps spines interesting
        return Expr::EwUnary(
            UnaryOp::kScale,
            Generate(depth - 1, rows, cols), rng_.NextDouble(0.5, 1.5));
    }
  }

  const std::map<std::string, DenseMatrix>& dense_env() const {
    return dense_env_;
  }

  Status Materialize(TileStore* store,
                     std::map<std::string, TiledMatrix>* bindings) {
    for (const auto& [name, dense] : dense_env_) {
      TiledMatrix m{name,
                    TileLayout::Square(dense.rows(), dense.cols(), kTile)};
      CUMULON_RETURN_IF_ERROR(StoreDense(dense, m, store));
      bindings->insert_or_assign(name, m);
    }
    return Status::OK();
  }

 private:
  int64_t PickDim() {
    static const int64_t kDims[] = {8, 16, 24};
    return kDims[rng_.NextUint64(3)];
  }

  ExprPtr MakeInput(int64_t rows, int64_t cols) {
    const std::string name = StrCat("in_", rows, "x", cols);
    if (dense_env_.find(name) == dense_env_.end()) {
      dense_env_.insert({name, DenseMatrix::Gaussian(rows, cols, &rng_)});
    }
    return Expr::Input(name, rows, cols);
  }

  Rng rng_;
  std::map<std::string, DenseMatrix> dense_env_;
};

class LoweringFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoweringFuzzTest, DistributedMatchesInterpreter) {
  const uint64_t seed = GetParam();
  ExprGenerator generator(seed);

  Program program;
  program.Assign("out1", generator.Generate(3, 16, 24));
  program.Assign("out2", generator.Generate(2, 24, 8));

  // Ground truth from the interpreter (on the raw program).
  auto reference = EvalProgram(program, generator.dense_env());
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (const bool fusion : {true, false}) {
    for (const bool optimize : {true, false}) {
      SCOPED_TRACE(StrCat("seed=", seed, " fusion=", fusion,
                          " optimize=", optimize));
      InMemoryTileStore store;
      std::map<std::string, TiledMatrix> bindings;
      ASSERT_TRUE(generator.Materialize(&store, &bindings).ok());

      LoweringOptions lowering;
      lowering.tile_dim = kTile;
      lowering.enable_fusion = fusion;
      const Program& to_run = program;
      const Program rewritten = optimize ? OptimizeProgram(to_run) : to_run;
      // Every randomized rewrite must leave the logical IR sound.
      {
        const VerifyReport report = VerifyProgram(rewritten);
        ASSERT_TRUE(report.ok()) << report.ToString();
      }
      auto lowered = Lower(rewritten, bindings, lowering);
      ASSERT_TRUE(lowered.ok()) << lowered.status();
      // ... and every lowered plan must pass the full physical suite.
      {
        PlanVerifyOptions verify_options;
        verify_options.check_external = true;
        for (const auto& [name, matrix] : bindings) {
          verify_options.external_matrices.insert(matrix.name);
        }
        verify_options.require_determinism = true;
        const VerifyReport report =
            VerifyPlan(lowered->plan, verify_options);
        ASSERT_TRUE(report.ok()) << report.ToString();
      }

      RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                        RealEngineOptions{});
      TileOpCostModel cost;
      Executor executor(&store, &engine, &cost, ExecutorOptions{});
      auto stats = executor.Run(lowered->plan);
      ASSERT_TRUE(stats.ok()) << stats.status();

      for (const char* target : {"out1", "out2"}) {
        auto loaded = LoadDense(lowered->outputs.at(target), &store);
        ASSERT_TRUE(loaded.ok()) << loaded.status();
        auto diff = reference->at(target).MaxAbsDiff(*loaded);
        ASSERT_TRUE(diff.ok());
        EXPECT_LT(diff.value(), 1e-7) << target;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoweringFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

/// The DAG-parallel executor must agree with the interpreter too.
class LeveledFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeveledFuzzTest, LeveledExecutionMatchesInterpreter) {
  const uint64_t seed = GetParam();
  ExprGenerator generator(seed * 1000 + 7);
  Program program;
  program.Assign("a", generator.Generate(2, 16, 16));
  program.Assign("b", generator.Generate(2, 16, 16));
  program.Assign("c", Expr::Input("a", 16, 16) * Expr::Input("b", 16, 16));

  auto reference = EvalProgram(program, generator.dense_env());
  ASSERT_TRUE(reference.ok()) << reference.status();

  InMemoryTileStore store;
  std::map<std::string, TiledMatrix> bindings;
  ASSERT_TRUE(generator.Materialize(&store, &bindings).ok());
  LoweringOptions lowering;
  lowering.tile_dim = kTile;
  auto lowered = Lower(program, bindings, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  {
    const VerifyReport report = VerifyPlan(lowered->plan);
    ASSERT_TRUE(report.ok()) << report.ToString();
  }

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions options;
  options.parallelize_independent_jobs = true;
  Executor executor(&store, &engine, &cost, options);
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  auto loaded = LoadDense(lowered->outputs.at("c"), &store);
  ASSERT_TRUE(loaded.ok());
  auto diff = reference->at("c").MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeveledFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

/// Tracing must be pure observation: the same random program run with a
/// global tracer installed has to produce bit-identical tiles to the
/// untraced run.
class TracedFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TracedFuzzTest, TracingDoesNotPerturbResults) {
  const uint64_t seed = GetParam();

  // One run of the generated program; returns the dense outputs. The same
  // seed regenerates the same program and inputs each call.
  auto run = [&]() -> std::map<std::string, DenseMatrix> {
    ExprGenerator generator(seed);
    Program program;
    program.Assign("out1", generator.Generate(3, 16, 24));
    program.Assign("out2", generator.Generate(2, 24, 8));

    InMemoryTileStore store;
    std::map<std::string, TiledMatrix> bindings;
    CUMULON_CHECK(generator.Materialize(&store, &bindings).ok());
    LoweringOptions lowering;
    lowering.tile_dim = kTile;
    auto lowered = Lower(program, bindings, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();

    RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                      RealEngineOptions{});
    TileOpCostModel cost;
    Executor executor(&store, &engine, &cost, ExecutorOptions{});
    CUMULON_CHECK(executor.Run(lowered->plan).ok());

    std::map<std::string, DenseMatrix> out;
    for (const char* target : {"out1", "out2"}) {
      auto loaded = LoadDense(lowered->outputs.at(target), &store);
      CUMULON_CHECK(loaded.ok()) << loaded.status();
      out.insert({target, std::move(loaded).value()});
    }
    return out;
  };

  Tracer tracer(Tracer::ClockDomain::kWall);
  SetGlobalTracer(&tracer);
  const std::map<std::string, DenseMatrix> traced = run();
  SetGlobalTracer(nullptr);
  const std::map<std::string, DenseMatrix> plain = run();

  EXPECT_GT(tracer.span_count(), 0) << "tracing never engaged; vacuous";
  for (const char* target : {"out1", "out2"}) {
    auto diff = plain.at(target).MaxAbsDiff(traced.at(target));
    ASSERT_TRUE(diff.ok());
    EXPECT_EQ(diff.value(), 0.0) << target << " differs with tracing on";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracedFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace cumulon
