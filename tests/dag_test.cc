#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Job dependency metadata
// ---------------------------------------------------------------------------

TEST(JobDepsTest, MatMulInputsAndOutputs) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  MatMulJob plain("mm", a, b, c, MatMulParams{1, 1, 0},
                  {EwStep::Binary(BinaryOp::kAdd, "D")});
  EXPECT_EQ(plain.InputMatrices(),
            (std::vector<std::string>{"A", "B", "D"}));
  EXPECT_EQ(plain.OutputMatrices(), (std::vector<std::string>{"C"}));

  // Split-k: outputs are the partials; the epilogue moves to the SumJob.
  MatMulJob split("mm2", a, b, c, MatMulParams{1, 1, 1},
                  {EwStep::Binary(BinaryOp::kAdd, "D")});
  EXPECT_EQ(split.InputMatrices(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(split.OutputMatrices(),
            (std::vector<std::string>{"C#k0", "C#k1"}));
}

TEST(JobDepsTest, LevelsOfLinearChain) {
  // C = A*B; D = C*C — strictly sequential.
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 8)};
  TiledMatrix d{"D", TileLayout::Square(16, 16, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{}, {}, &plan).ok());
  ASSERT_TRUE(AddMatMul(c, c, d, MatMulParams{}, {}, &plan).ok());
  EXPECT_EQ(Executor::JobLevels(plan), (std::vector<int>{0, 1}));
}

TEST(JobDepsTest, IndependentJobsShareALevel) {
  TiledMatrix a{"A", TileLayout::Square(16, 16, 8)};
  TiledMatrix b{"B", TileLayout::Square(16, 16, 8)};
  TiledMatrix c1{"C1", TileLayout::Square(16, 16, 8)};
  TiledMatrix c2{"C2", TileLayout::Square(16, 16, 8)};
  TiledMatrix d{"D", TileLayout::Square(16, 16, 8)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c1, MatMulParams{}, {}, &plan).ok());
  ASSERT_TRUE(AddMatMul(b, a, c2, MatMulParams{}, {}, &plan).ok());
  ASSERT_TRUE(AddMatMul(c1, c2, d, MatMulParams{}, {}, &plan).ok());
  EXPECT_EQ(Executor::JobLevels(plan), (std::vector<int>{0, 0, 1}));
}

TEST(JobDepsTest, SplitKSumDependsOnItsMultiply) {
  TiledMatrix a{"A", TileLayout::Square(16, 64, 16)};
  TiledMatrix b{"B", TileLayout::Square(64, 16, 16)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, 16)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{1, 1, 1}, {}, &plan).ok());
  EXPECT_EQ(Executor::JobLevels(plan), (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------------------
// Leveled execution
// ---------------------------------------------------------------------------

LoweredProgram LowerGnmf(const std::map<std::string, TiledMatrix>& bindings,
                         const GnmfSpec& spec) {
  LoweringOptions lowering;
  lowering.tile_dim = 8;
  // Unfused: the numerator and denominator of each update become
  // independent jobs, giving the DAG scheduler something to merge (fusion
  // chains them through the epilogue operand).
  lowering.enable_fusion = false;
  auto lowered =
      Lower(OptimizeProgram(BuildGnmfIteration(spec)), bindings, lowering);
  CUMULON_CHECK(lowered.ok()) << lowered.status();
  return std::move(lowered).value();
}

TEST(LeveledExecutionTest, RealModeProducesIdenticalResults) {
  GnmfSpec spec;
  spec.m = 16;
  spec.n = 12;
  spec.k = 4;
  Rng rng(91);
  auto make_inputs = [&](InMemoryTileStore* store,
                         std::map<std::string, TiledMatrix>* bindings,
                         Rng* local_rng) {
    for (auto [name, rows, cols] :
         {std::tuple<const char*, int64_t, int64_t>{"V", spec.m, spec.n},
          {"W", spec.m, spec.k},
          {"H", spec.k, spec.n}}) {
      TiledMatrix m{name, TileLayout::Square(rows, cols, 8)};
      DenseMatrix dense = DenseMatrix::Uniform(rows, cols, local_rng, 0.1, 1);
      CUMULON_CHECK(StoreDense(dense, m, store).ok());
      bindings->insert_or_assign(name, m);
    }
  };

  // Sequential run.
  InMemoryTileStore store_seq;
  std::map<std::string, TiledMatrix> bindings_seq;
  Rng rng1(91);
  make_inputs(&store_seq, &bindings_seq, &rng1);
  auto lowered_seq = LowerGnmf(bindings_seq, spec);
  RealEngine engine1(ClusterConfig{MachineProfile{}, 2, 2},
                     RealEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions seq_options;
  Executor seq(&store_seq, &engine1, &cost, seq_options);
  ASSERT_TRUE(seq.Run(lowered_seq.plan).ok());

  // Leveled run over identical inputs.
  InMemoryTileStore store_par;
  std::map<std::string, TiledMatrix> bindings_par;
  Rng rng2(91);
  make_inputs(&store_par, &bindings_par, &rng2);
  auto lowered_par = LowerGnmf(bindings_par, spec);
  RealEngine engine2(ClusterConfig{MachineProfile{}, 2, 2},
                     RealEngineOptions{});
  ExecutorOptions par_options;
  par_options.parallelize_independent_jobs = true;
  Executor par(&store_par, &engine2, &cost, par_options);
  auto par_stats = par.Run(lowered_par.plan);
  ASSERT_TRUE(par_stats.ok()) << par_stats.status();
  // Fewer scheduling rounds than jobs: some level really merged two jobs.
  EXPECT_LT(par_stats->jobs.size(), lowered_par.plan.jobs.size());

  for (const char* target : {"H", "W"}) {
    auto seq_out = LoadDense(lowered_seq.outputs.at(target), &store_seq);
    auto par_out = LoadDense(lowered_par.outputs.at(target), &store_par);
    ASSERT_TRUE(seq_out.ok() && par_out.ok());
    auto diff = seq_out->MaxAbsDiff(*par_out);
    ASSERT_TRUE(diff.ok());
    EXPECT_EQ(diff.value(), 0.0) << target;
  }
}

TEST(LeveledExecutionTest, SimModeNeverSlowerThanSequential) {
  GnmfSpec spec;
  spec.m = 1 << 14;
  spec.n = 1 << 13;
  spec.k = 128;
  DfsOptions dfs_options;
  dfs_options.num_nodes = 16;
  SimDfs dfs(dfs_options);
  DfsTileStore store(&dfs);
  std::map<std::string, TiledMatrix> bindings;
  for (auto [name, rows, cols] :
       {std::tuple<const char*, int64_t, int64_t>{"V", spec.m, spec.n},
        {"W", spec.m, spec.k},
        {"H", spec.k, spec.n}}) {
    TiledMatrix m{name, TileLayout::Square(rows, cols, 2048)};
    for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
        const int64_t bytes =
            16 + m.layout.TileRowsAt(r) * m.layout.TileColsAt(c) * 8;
        CUMULON_CHECK(store.PutMeta(name, TileId{r, c}, bytes, -1).ok());
      }
    }
    bindings.insert_or_assign(name, m);
  }
  LoweringOptions lowering;
  lowering.tile_dim = 2048;
  auto lowered = Lower(OptimizeProgram(BuildGnmfIteration(spec)), bindings,
                       lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  auto machine = FindMachine("m1.large");
  ASSERT_TRUE(machine.ok());
  ClusterConfig cluster{machine.value(), 16, 2};
  TileOpCostModel cost;

  auto run = [&](bool parallel) {
    SimEngine engine(cluster, SimEngineOptions{});
    ExecutorOptions options;
    options.real_mode = false;
    options.parallelize_independent_jobs = parallel;
    options.drop_temporaries = false;  // second run reuses registrations
    Executor executor(&store, &engine, &cost, options);
    auto stats = executor.Run(lowered->plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    return stats->total_seconds;
  };
  const double sequential = run(false);
  const double parallel = run(true);
  EXPECT_LE(parallel, sequential + 1e-9);
}

TEST(LeveledExecutionTest, EmptyPlanIsFine) {
  InMemoryTileStore store;
  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 1},
                    RealEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions options;
  options.parallelize_independent_jobs = true;
  Executor executor(&store, &engine, &cost, options);
  PhysicalPlan plan;
  auto stats = executor.Run(plan);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_tasks, 0);
}

}  // namespace
}  // namespace cumulon
