#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "svc/client.h"
#include "svc/message.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/wire.h"

namespace cumulon {
namespace {

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.machine.name = "test.machine";
  options.machine.cores = 2;
  options.elastic.min_machines = 1;
  options.elastic.max_machines = 4;
  options.slots_per_machine = 2;
  options.max_concurrent_plans = 2;
  options.reaper_interval_seconds = 0.002;
  options.elastic_interval_seconds = 0.01;
  return options;
}

/// Short unix-socket path unique to this process (sun_path is ~100 bytes,
/// so TempDir-based paths are risky).
std::string SocketAddress(const char* tag) {
  return StrCat("unix:/tmp/cumulon_svc_test_", tag, "_", getpid(), ".sock");
}

TEST(WireTest, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::string payload = "{\"type\":\"HELLO\"}";
  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  auto read_back = ReadFrame(fds[0]);
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(*read_back, payload);
  // Closing the writer yields a clean-EOF Cancelled, not an error.
  CloseFd(fds[1]);
  auto eof = ReadFrame(fds[0]);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kCancelled);
  CloseFd(fds[0]);
}

TEST(WireTest, RejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string huge(kMaxFramePayload + 1, 'x');
  EXPECT_FALSE(WriteFrame(fds[1], huge).ok());
  CloseFd(fds[0]);
  CloseFd(fds[1]);
}

TEST(WireTest, RejectsUnparseableAddresses) {
  EXPECT_FALSE(ListenOn("carrier-pigeon:coop7").ok());
  EXPECT_FALSE(ConnectTo("tcp:nohost").ok());
}

TEST(ServerTest, EndToEndOverUnixSocket) {
  CumulonService service(SmallServiceOptions());
  ServiceServer server(&service);
  const std::string address = SocketAddress("e2e");
  ASSERT_TRUE(server.Start(address).ok());

  // Two concurrent connections, one tenant each.
  auto transport_a = SocketTransport::Connect(address);
  auto transport_b = SocketTransport::Connect(address);
  ASSERT_TRUE(transport_a.ok()) << transport_a.status();
  ASSERT_TRUE(transport_b.ok()) << transport_b.status();
  ServiceClient alice(transport_a->get());
  ServiceClient bob(transport_b->get());
  ASSERT_TRUE(alice.Hello("alice").ok());
  ASSERT_TRUE(bob.Hello("bob").ok());
  EXPECT_EQ(server.active_connections(), 2);

  auto submit = alice.Submit("mm-s");
  ASSERT_TRUE(submit.ok()) << submit.status();
  ServiceClient::PollReply poll;
  for (int i = 0; i < 5000 && !poll.terminal; ++i) {
    auto reply = alice.Poll(submit->plan);
    ASSERT_TRUE(reply.ok()) << reply.status();
    poll = *reply;
    if (!poll.terminal) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(poll.state, "DONE");

  // Tenant isolation holds across sockets too.
  auto foreign = bob.Poll(submit->plan);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(ErrorReason(foreign.status()), "plan.foreign");

  // DRAIN stops the whole front end; WaitUntilStopped returns.
  auto drained = alice.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status();
  server.WaitUntilStopped();
  EXPECT_TRUE(service.drained());
  EXPECT_EQ(server.active_connections(), 0);
}

TEST(ServerTest, MalformedFrameGetsTypedErrorThenDisconnect) {
  CumulonService service(SmallServiceOptions());
  ServiceServer server(&service);
  const std::string address = SocketAddress("malformed");
  ASSERT_TRUE(server.Start(address).ok());

  auto fd = ConnectTo(address);
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(WriteFrame(*fd, "this is not json").ok());
  auto reply = ReadFrame(*fd);
  ASSERT_TRUE(reply.ok()) << reply.status();
  auto frame = ParseJson(*reply);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->StringOr("type", ""), "ERROR");
  EXPECT_EQ(frame->StringOr("reason", ""), "proto.malformed");
  // The server dropped the connection after answering.
  auto closed = ReadFrame(*fd);
  EXPECT_FALSE(closed.ok());
  CloseFd(*fd);

  // The daemon survived; a well-formed connection still works.
  auto transport = SocketTransport::Connect(address);
  ASSERT_TRUE(transport.ok());
  ServiceClient client(transport->get());
  ASSERT_TRUE(client.Hello("ops").ok());
  ASSERT_TRUE(client.Drain().ok());
  server.WaitUntilStopped();
}

TEST(ServerTest, StopWithoutDrainShutsConnectionsDown) {
  CumulonService service(SmallServiceOptions());
  ServiceServer server(&service);
  const std::string address = SocketAddress("stop");
  ASSERT_TRUE(server.Start(address).ok());
  auto transport = SocketTransport::Connect(address);
  ASSERT_TRUE(transport.ok());
  ServiceClient client(transport->get());
  ASSERT_TRUE(client.Hello("alice").ok());

  server.Stop();
  EXPECT_EQ(server.active_connections(), 0);
  // The client's next call fails cleanly instead of hanging.
  EXPECT_FALSE(client.Stats().ok());
  // The service itself is still alive (Stop is a front-end shutdown);
  // drain it directly for a clean teardown.
  LocalTransport local(&service);
  ServiceClient ops(&local);
  ASSERT_TRUE(ops.Hello("ops").ok());
  ASSERT_TRUE(ops.Drain().ok());
}

}  // namespace
}  // namespace cumulon
