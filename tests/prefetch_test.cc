// Asynchronous tile prefetch: future/state semantics, request coalescing
// in DfsTileStore, the per-task pipeline's byte budget, cancellation of
// never-consumed fetches, and — the contract that matters most — bitwise
// identical job outputs with prefetching on and off.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/task_io_stats.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "exec/prefetch_pipeline.h"
#include "matrix/tiled_matrix.h"
#include "obs/metrics.h"

namespace cumulon {
namespace {

std::shared_ptr<const Tile> MakeTile(int64_t rows, int64_t cols,
                                     double value) {
  auto tile = std::make_shared<Tile>(rows, cols);
  FillTile(tile.get(), value);
  return tile;
}

TEST(TileFutureTest, ReadyFutureResolvesWithoutBlocking) {
  TileFuture future = TileFuture::Ready(MakeTile(2, 2, 3.0));
  ASSERT_TRUE(future.valid());
  EXPECT_TRUE(future.ready());
  auto got = future.Await();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 3.0);
}

TEST(TileFutureTest, AwaitBlocksUntilResolveAndChargesStall) {
  auto state = std::make_shared<TileFetchState>();
  std::atomic<double> reported{-1.0};
  state->stall_callback = [&](double s) { reported.store(s); };
  TileFuture future = TileFuture::FromState(state);
  EXPECT_FALSE(future.ready());

  TaskIoStats::Current()->Reset();
  std::thread resolver([state] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    state->Resolve(MakeTile(2, 2, 7.0));
  });
  auto got = future.Await();
  resolver.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 7.0);
  EXPECT_GT(TaskIoStats::Current()->stall_seconds, 0.0);
  EXPECT_EQ(TaskIoStats::Current()->async_awaits, 1);
  EXPECT_GT(reported.load(), 0.0);
}

TEST(TileFutureTest, StateAbandonedOnlyWhenEveryWaiterCancels) {
  auto state = std::make_shared<TileFetchState>();  // creator = 1 waiter
  state->AddWaiter();                               // coalesced second future
  TileFuture first = TileFuture::FromState(state);
  TileFuture second = TileFuture::FromState(state);
  first.Cancel();
  EXPECT_FALSE(state->abandoned()) << "one of two waiters remains";
  second.Cancel();
  EXPECT_TRUE(state->abandoned());
}

// ---------------------------------------------------------------------------
// DfsTileStore prefetch pool
// ---------------------------------------------------------------------------

DfsOptions SlowDfs(double latency_seconds) {
  DfsOptions o;
  o.num_nodes = 4;
  o.replication = 2;
  o.read_latency_seconds = latency_seconds;
  return o;
}

TEST(DfsPrefetchTest, ConcurrentGetAsyncCoalesceOntoOneDfsRead) {
  SimDfs dfs(SlowDfs(0.15));
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  MetricsRegistry metrics;
  store.AttachMetrics(&metrics);
  store.EnablePrefetch(4);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 5.0), 0).ok());
  const int64_t reads_before = dfs.TotalStats().reads;

  // All four requests land while the first fetch is still sleeping in the
  // DFS (0.15 s latency), so they must share its state instead of issuing
  // their own reads.
  std::vector<TileFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(store.GetAsync("m", TileId{0, 0}, 1));
  }
  for (TileFuture& future : futures) {
    auto got = future.Await();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ((*got)->At(0, 0), 5.0);
  }
  EXPECT_EQ(dfs.TotalStats().reads, reads_before + 1);
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.CounterOr("prefetch.issued", 0), 1);
  EXPECT_EQ(snap.CounterOr("prefetch.coalesced", 0), 3);
  EXPECT_GT(snap.CounterOr("prefetch.stall_ns", 0), 0);
}

TEST(DfsPrefetchTest, CancelledQueuedFetchSkipsTheDfsRead) {
  SimDfs dfs(SlowDfs(0.2));
  DfsTileStore store(&dfs);
  // One worker: tile "a" occupies it for 0.2 s, so "b"'s fetch is still
  // queued — not started — when its only future cancels.
  store.EnablePrefetch(1);
  ASSERT_TRUE(store.Put("a", TileId{0, 0}, MakeTile(8, 8, 1.0), 0).ok());
  ASSERT_TRUE(store.Put("b", TileId{0, 0}, MakeTile(8, 8, 2.0), 0).ok());
  const int64_t reads_before = dfs.TotalStats().reads;

  TileFuture fa = store.GetAsync("a", TileId{0, 0}, 1);
  TileFuture fb = store.GetAsync("b", TileId{0, 0}, 1);
  fb.Cancel();
  auto got_a = fa.Await();
  ASSERT_TRUE(got_a.ok()) << got_a.status();
  EXPECT_EQ((*got_a)->At(0, 0), 1.0);

  // The worker resolves the abandoned fetch (to Cancelled) without touching
  // the DFS; a fresh synchronous Get afterwards still works.
  EXPECT_EQ(dfs.TotalStats().reads, reads_before + 1);
  auto got_b = store.Get("b", TileId{0, 0}, 1);
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ((*got_b)->At(0, 0), 2.0);
}

TEST(DfsPrefetchTest, CancelRacingCoalesceNeverCancelsTheOtherWaiter) {
  // Regression test for a cancellation/coalescing race: the prefetch
  // worker used to decide "every waiter cancelled, resolve Cancelled"
  // without atomically unpublishing the fetch from the in-flight map, so a
  // GetAsync arriving in that window could coalesce onto a fetch that then
  // resolved Cancelled under it. The invariant now is that a fetch only
  // resolves Cancelled after it is out of the map — a racer either joins a
  // still-live fetch (its waiter count un-abandons it) or misses the map
  // and issues its own read. Either way its Await sees the tile.
  SimDfs dfs(SlowDfs(0.002));
  DfsTileStore store(&dfs);
  store.EnablePrefetch(1);
  ASSERT_TRUE(store.Put("blk", TileId{0, 0}, MakeTile(4, 4, 1.0), 0).ok());
  ASSERT_TRUE(store.Put("t", TileId{0, 0}, MakeTile(4, 4, 2.0), 0).ok());
  for (int round = 0; round < 100; ++round) {
    // The blocker occupies the single worker so "t"'s fetch is queued
    // while the cancel and the coalescing GetAsync race below.
    TileFuture blocker = store.GetAsync("blk", TileId{0, 0}, 1);
    TileFuture victim = store.GetAsync("t", TileId{0, 0}, 1);
    std::thread canceller([&] { victim.Cancel(); });
    TileFuture racer = store.GetAsync("t", TileId{0, 0}, 1);
    canceller.join();
    auto got = racer.Await();
    ASSERT_TRUE(got.ok()) << "round " << round << ": " << got.status();
    EXPECT_EQ((*got)->At(0, 0), 2.0);
    ASSERT_TRUE(blocker.Await().ok());
  }
}

TEST(DfsPrefetchTest, PrefetchLandsInTileCacheAndSecondReadHits) {
  SimDfs dfs(SlowDfs(0.0));
  DfsTileStore store(&dfs);
  TileCacheGroup caches(4, 1 << 20);
  store.AttachCaches(&caches);
  MetricsRegistry metrics;
  store.AttachMetrics(&metrics);
  store.EnablePrefetch(2);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 4.0), 0).ok());

  store.Prefetch("m", TileId{0, 0}, 1);
  // Wait for the background fetch to land in node 1's cache.
  for (int spin = 0; spin < 1000 && caches.node(1)->Get(
                                        DfsTileStore::TilePath(
                                            "m", TileId{0, 0})) == nullptr;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int64_t reads_after_prefetch = dfs.TotalStats().reads;
  auto got = store.Get("m", TileId{0, 0}, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 4.0);
  EXPECT_EQ(dfs.TotalStats().reads, reads_after_prefetch)
      << "second read should be served by the cache the prefetch filled";
  // A cache-resident tile turns further hints into instant hits.
  store.Prefetch("m", TileId{0, 0}, 1);
  EXPECT_GE(metrics.Snapshot().CounterOr("prefetch.hit", 0), 1);
}

// ---------------------------------------------------------------------------
// TaskTileReader budget / ordering
// ---------------------------------------------------------------------------

/// Store whose GetAsync hands out unresolved futures the test resolves by
/// hand — the only way to observe the pipeline's in-flight window exactly.
class ManualAsyncStore : public TileStore {
 public:
  Status Put(const std::string& matrix, TileId id,
             std::shared_ptr<const Tile> tile, int) override {
    tiles_[StrCat(matrix, "/", id.row, "_", id.col)] = std::move(tile);
    return Status::OK();
  }
  Result<std::shared_ptr<const Tile>> Get(const std::string& matrix,
                                          TileId id, int) override {
    ++sync_gets;
    auto it = tiles_.find(StrCat(matrix, "/", id.row, "_", id.col));
    if (it == tiles_.end()) return Status::NotFound("no tile");
    return it->second;
  }
  TileFuture GetAsync(const std::string& matrix, TileId id, int) override {
    auto state = std::make_shared<TileFetchState>();
    issued.push_back({StrCat(matrix, "/", id.row, "_", id.col), state});
    return TileFuture::FromState(state);
  }
  Status DeleteMatrix(const std::string&) override { return Status::OK(); }

  void ResolveAll() {
    for (auto& [key, state] : issued) {
      if (state->resolved()) continue;
      auto it = tiles_.find(key);
      ASSERT_NE(it, tiles_.end()) << key;
      state->Resolve(it->second);
    }
  }

  std::map<std::string, std::shared_ptr<const Tile>> tiles_;
  std::vector<std::pair<std::string, std::shared_ptr<TileFetchState>>> issued;
  int sync_gets = 0;
};

TEST(TaskTileReaderTest, WindowRespectsByteBudget) {
  ManualAsyncStore store;
  const int64_t tile_bytes = MakeTile(8, 8, 0.0)->SizeBytes();
  // The window is budgeted in in-memory footprint (what a prefetched tile
  // actually pins), not serialized size.
  const int64_t tile_mem = MakeTile(8, 8, 0.0)->MemoryBytes();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        store.Put("m", TileId{0, i}, MakeTile(8, 8, i), /*writer=*/0).ok());
  }

  // Budget = 2 tiles: hints beyond the window stay pending.
  TaskTileReader reader(&store, /*machine=*/0, 2 * tile_mem);
  for (int i = 0; i < 6; ++i) reader.Hint("m", TileId{0, i}, tile_bytes);
  EXPECT_EQ(store.issued.size(), 2u);
  EXPECT_EQ(reader.in_flight_bytes(), 2 * tile_mem);

  // Consuming the head of the window admits the next pending hint; the
  // resolved tile comes back through the future, not a sync Get.
  store.ResolveAll();
  auto got = reader.Read("m", TileId{0, 0});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(0, 0), 0.0);
  EXPECT_EQ(store.sync_gets, 0);
  EXPECT_EQ(store.issued.size(), 3u) << "window topped back up after Read";

  store.ResolveAll();
  for (int i = 1; i < 6; ++i) {
    auto tile = reader.Read("m", TileId{0, i});
    ASSERT_TRUE(tile.ok()) << tile.status();
    EXPECT_EQ((*tile)->At(0, 0), static_cast<double>(i));
    store.ResolveAll();  // later hints are issued as the window drains
  }
  EXPECT_EQ(store.sync_gets, 0) << "every read was served by a prefetch";
  EXPECT_EQ(reader.in_flight_bytes(), 0);
}

TEST(TaskTileReaderTest, OversizedHintStillGoesOutAlone) {
  ManualAsyncStore store;
  const int64_t tile_bytes = MakeTile(8, 8, 0.0)->SizeBytes();
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 1.0), 0).ok());
  ASSERT_TRUE(store.Put("m", TileId{0, 1}, MakeTile(8, 8, 2.0), 0).ok());
  TaskTileReader reader(&store, 0, tile_bytes / 2);  // budget < one tile
  reader.Hint("m", TileId{0, 0}, tile_bytes);
  reader.Hint("m", TileId{0, 1}, tile_bytes);
  EXPECT_EQ(store.issued.size(), 1u) << "one in-flight fetch minimum";
  store.ResolveAll();
  ASSERT_TRUE(reader.Read("m", TileId{0, 0}).ok());
  store.ResolveAll();
  ASSERT_TRUE(reader.Read("m", TileId{0, 1}).ok());
  EXPECT_EQ(store.sync_gets, 0);
}

TEST(TaskTileReaderTest, ZeroBudgetFallsBackToSynchronousGets) {
  ManualAsyncStore store;
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 9.0), 0).ok());
  TaskTileReader reader(&store, 0, /*budget_bytes=*/0);
  reader.Hint("m", TileId{0, 0}, 1024);
  EXPECT_TRUE(store.issued.empty());
  TaskIoStats::Current()->Reset();
  auto got = reader.Read("m", TileId{0, 0});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(store.sync_gets, 1);
  EXPECT_EQ(TaskIoStats::Current()->sync_reads, 1);
}

TEST(TaskTileReaderTest, DestructorCancelsUnconsumedPrefetches) {
  ManualAsyncStore store;
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 1.0), 0).ok());
  std::shared_ptr<TileFetchState> state;
  {
    TaskTileReader reader(&store, 0, 1 << 20);
    reader.Hint("m", TileId{0, 0}, 1024);
    ASSERT_EQ(store.issued.size(), 1u);
    state = store.issued[0].second;
    EXPECT_FALSE(state->abandoned());
  }
  EXPECT_TRUE(state->abandoned())
      << "a task that exits without consuming its hints must release them";
}

TEST(TaskTileReaderTest, MemoServesRepeatedReadsOnce) {
  ManualAsyncStore store;
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(8, 8, 3.0), 0).ok());
  TaskTileReader reader(&store, 0, /*budget_bytes=*/0);
  auto first = reader.ReadMemoized("m", TileId{0, 0});
  ASSERT_TRUE(first.ok());
  auto second = reader.ReadMemoized("m", TileId{0, 0});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(store.sync_gets, 1) << "second read must come from the memo";
}

// ---------------------------------------------------------------------------
// End-to-end: outputs must be bit-identical with prefetch on and off, over
// every job type (matmul with split-k + epilogue, sum, ew chain, aggregate,
// transpose) on the real engine.
// ---------------------------------------------------------------------------

struct PipelineOutputs {
  TiledMatrix c{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix ew{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix agg{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix t{"", TileLayout::Square(1, 1, 1)};
};

Status RunPipelinePlan(bool prefetch, uint64_t seed, DfsTileStore* store,
                       PipelineOutputs* out) {
  const int64_t n = 128 + 64 * (seed % 2);  // vary shape across seeds
  const int64_t tile = 64;
  TiledMatrix a{"A", TileLayout::Square(n, n, tile)};
  TiledMatrix b{"B", TileLayout::Square(n, n, tile)};
  TiledMatrix v{"V", TileLayout(1, n, 1, tile)};  // row-vector operand
  TiledMatrix c{"C", TileLayout::Square(n, n, tile)};
  TiledMatrix ew{"EW", TileLayout::Square(n, n, tile)};
  TiledMatrix agg{"AGG", TileLayout(n, 1, tile, 1)};
  TiledMatrix t{"T", TileLayout::Square(n, n, tile)};
  Rng rng(seed);  // identical inputs for both runs
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(a, FillKind::kGaussian, 0, &rng, store));
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(b, FillKind::kGaussian, 0, &rng, store));
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(v, FillKind::kGaussian, 0, &rng, store));

  if (prefetch) store->EnablePrefetch(3);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngine engine(cluster, RealEngineOptions{});
  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  // Small budget (3 tiles) so the window actually cycles mid-task.
  exec_options.prefetch_budget_bytes =
      prefetch ? 3 * (16 + tile * tile * 8) : 0;
  Executor executor(store, &engine, &cost, exec_options);

  PhysicalPlan plan;
  // Split-k multiply (partials + sum job) with a broadcast epilogue.
  std::vector<EwStep> epilogue = {
      EwStep::Unary(UnaryOp::kScale, 0.5),
      EwStep::Binary(BinaryOp::kAdd, "V", false, EwStep::Operand::kRowVector)};
  CUMULON_RETURN_IF_ERROR(
      AddMatMul(a, b, c, MatMulParams{1, 1, 1}, epilogue, &plan));
  CUMULON_RETURN_IF_ERROR(AddEwChain(
      c, ew, {EwStep::Unary(UnaryOp::kSigmoid),
              EwStep::Binary(BinaryOp::kMul, "A", false,
                             EwStep::Operand::kFull)},
      &plan, /*tiles_per_task=*/3));
  CUMULON_RETURN_IF_ERROR(AddAggregate(
      ew, agg, AggKind::kRowSums, {EwStep::Unary(UnaryOp::kScale, 1.0 / n)},
      &plan));
  CUMULON_RETURN_IF_ERROR(AddTranspose(ew, t, &plan, /*tiles_per_task=*/3));
  CUMULON_RETURN_IF_ERROR(executor.Run(plan).status());
  out->c = c;
  out->ew = ew;
  out->agg = agg;
  out->t = t;
  return Status::OK();
}

void ExpectBitIdentical(const TiledMatrix& m, DfsTileStore* off,
                        DfsTileStore* on) {
  const TileLayout& L = m.layout;
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      auto a = off->Get(m.name, TileId{gr, gc}, -1);
      auto b = on->Get(m.name, TileId{gr, gc}, -1);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_EQ((*a)->size(), (*b)->size());
      for (int64_t i = 0; i < (*a)->size(); ++i) {
        ASSERT_EQ((*a)->data()[i], (*b)->data()[i])
            << m.name << " tile (" << gr << "," << gc
            << ") differs at element " << i;
      }
    }
  }
}

class PrefetchPipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefetchPipelineFuzzTest, OutputsBitIdenticalPrefetchOnAndOff) {
  const uint64_t seed = GetParam();
  // Small injected read latency makes the on-run genuinely overlap; the
  // off-run pays it synchronously. Identical data either way.
  SimDfs dfs_off(SlowDfs(0.001)), dfs_on(SlowDfs(0.001));
  DfsTileStore store_off(&dfs_off, /*verify_checksums=*/true);
  DfsTileStore store_on(&dfs_on, /*verify_checksums=*/true);

  PipelineOutputs out_off, out_on;
  auto st_off = RunPipelinePlan(false, seed, &store_off, &out_off);
  ASSERT_TRUE(st_off.ok()) << st_off;
  auto st_on = RunPipelinePlan(true, seed, &store_on, &out_on);
  ASSERT_TRUE(st_on.ok()) << st_on;
  ASSERT_TRUE(store_on.prefetch_enabled());

  ExpectBitIdentical(out_off.c, &store_off, &store_on);
  ExpectBitIdentical(out_off.ew, &store_off, &store_on);
  ExpectBitIdentical(out_off.agg, &store_off, &store_on);
  ExpectBitIdentical(out_off.t, &store_off, &store_on);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefetchPipelineFuzzTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace cumulon
