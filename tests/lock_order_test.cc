// Tests for cumulon::Mutex's debug lock-order validator (common/mutex.h).
//
// The validator builds a global acquisition-order graph and aborts on the
// first cycle — i.e. on the *potential* deadlock, not the actual one — so
// the deliberate-inversion cases here run single-threaded and still trip.
// They use EXPECT_DEATH: the inversion happens in a forked child, the
// parent checks the abort message. When the validator is compiled out
// (NDEBUG, or -DCUMULON_LOCK_ORDER_CHECKS=0) those cases are skipped and
// CompiledOutInRelease pins the configuration instead.

#include <thread>
#include <vector>

#include "common/mutex.h"
#include "gtest/gtest.h"

namespace cumulon {
namespace {

TEST(LockOrderTest, ChecksTrackBuildMode) {
  // The validator must be active exactly when asserts are: debug builds
  // get the checker, release builds (NDEBUG) compile it out to zero
  // overhead. A config that breaks this equivalence (e.g. forcing checks
  // into release) is caught here.
#ifdef NDEBUG
  EXPECT_FALSE(LockOrderChecksEnabled());
#else
  EXPECT_TRUE(LockOrderChecksEnabled());
#endif
}

TEST(LockOrderTest, ConsistentOrderIsClean) {
  // A -> B in every thread: the graph stays acyclic, nothing aborts.
  Mutex a("order_clean_a");
  Mutex b("order_clean_b");
  int shared = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 100; ++j) {
        MutexLock la(&a);
        MutexLock lb(&b);
        ++shared;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, 400);
}

TEST(LockOrderTest, DisjointPairsAreClean) {
  // Different threads using unrelated mutexes never interact in the graph.
  Mutex a("order_disjoint_a");
  Mutex b("order_disjoint_b");
  std::thread ta([&] {
    for (int i = 0; i < 100; ++i) MutexLock lock(&a);
  });
  std::thread tb([&] {
    for (int i = 0; i < 100; ++i) MutexLock lock(&b);
  });
  ta.join();
  tb.join();
}

TEST(LockOrderDeathTest, InversionAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order validator compiled out (NDEBUG)";
  }
  EXPECT_DEATH(
      {
        Mutex a("order_inv_a");
        Mutex b("order_inv_b");
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // learns a -> b
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);  // b -> a closes the cycle: abort
        }
      },
      "lock-order cycle detected");
}

TEST(LockOrderDeathTest, ThreeLockCycleAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order validator compiled out (NDEBUG)";
  }
  // a -> b, b -> c, then c -> a: the cycle spans three edges, so the
  // validator's path search (not just a direct-edge check) must find it.
  EXPECT_DEATH(
      {
        Mutex a("order_tri_a");
        Mutex b("order_tri_b");
        Mutex c("order_tri_c");
        {
          MutexLock la(&a);
          MutexLock lb(&b);
        }
        {
          MutexLock lb(&b);
          MutexLock lc(&c);
        }
        {
          MutexLock lc(&c);
          MutexLock la(&a);
        }
      },
      "lock-order cycle detected");
}

TEST(LockOrderDeathTest, RecursiveAcquisitionAborts) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order validator compiled out (NDEBUG)";
  }
  EXPECT_DEATH(
      {
        Mutex a("order_rec_a");
        MutexLock outer(&a);
        a.Lock();  // std::mutex would deadlock here; the validator aborts
      },
      "recursive acquisition");
}

TEST(LockOrderTest, DestroyedMutexDropsItsEdges) {
  if (!LockOrderChecksEnabled()) {
    GTEST_SKIP() << "lock-order validator compiled out (NDEBUG)";
  }
  // Stack mutexes (e.g. RealEngine's per-job JobSync) die and their
  // addresses get reused. The validator must forget a destroyed node's
  // edges, or a recycled address would inherit stale ordering constraints
  // and produce false cycles.
  Mutex outer("order_destroy_outer");
  for (int i = 0; i < 64; ++i) {
    Mutex inner("order_destroy_inner");
    // outer -> inner this iteration; a *stale* inner -> outer edge from a
    // previous iteration's address reuse would abort here.
    MutexLock lo(&outer);
    MutexLock li(&inner);
  }
  for (int i = 0; i < 64; ++i) {
    Mutex inner("order_destroy_inner2");
    MutexLock li(&inner);
    MutexLock lo(&outer);  // reversed pairing, fresh node each time: clean
  }
}

TEST(LockOrderTest, CondVarWaitReleasesHeldState) {
  // CondVar::Wait unlocks the mutex while blocked; the validator must see
  // that window as "not held" or the wake-up reacquire would count as
  // recursive. Exercised via a normal producer/consumer handoff.
  Mutex mu("order_cv_mu");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  }
  producer.join();
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace cumulon
