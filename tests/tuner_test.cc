#include <gtest/gtest.h>

#include "lang/logical_optimizer.h"
#include "lang/programs.h"
#include "opt/job_tuner.h"
#include "opt/predictor.h"

namespace cumulon {
namespace {

ClusterConfig MidCluster() {
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());
  return ClusterConfig{machine.value(), 16, 2};
}

TEST(TunerTest, SquareMultiplyAvoidsDeepSplitK) {
  // 16x16 tile grid: plenty of (i,j) parallelism; split-k only adds merge
  // cost, so the tuned bk should cover all of k (or most of it).
  TileLayout a(32768, 32768, 2048, 2048);
  TileLayout b(32768, 32768, 2048, 2048);
  TileOpCostModel cost;
  auto tuned = TuneMatMulParams(a, b, MidCluster(), cost, TuneOptions{});
  ASSERT_TRUE(tuned.ok()) << tuned.status();
  EXPECT_GT(tuned->feasible_candidates, 0);
  const int64_t gk = a.grid_cols();
  const int64_t bk = tuned->params.bk <= 0 ? gk : tuned->params.bk;
  EXPECT_GE(bk, gk / 2);
}

TEST(TunerTest, DeepMultiplyPrefersSplitK) {
  // 4x4 output grid but 64 k-tiles: without split-k only 16 tasks exist
  // for 32 slots; the tuner must split k to parallelize.
  TileLayout a(8192, 131072, 2048, 2048);
  TileLayout b(131072, 8192, 2048, 2048);
  TileOpCostModel cost;
  auto tuned = TuneMatMulParams(a, b, MidCluster(), cost, TuneOptions{});
  ASSERT_TRUE(tuned.ok()) << tuned.status();
  const int64_t gk = a.grid_cols();
  const int64_t bk = tuned->params.bk <= 0 ? gk : tuned->params.bk;
  EXPECT_LT(bk, gk);
}

TEST(TunerTest, TunedBeatsOrMatchesEveryFixedCandidate) {
  TileLayout a(16384, 65536, 2048, 2048);
  TileLayout b(65536, 16384, 2048, 2048);
  TileOpCostModel cost;
  TuneOptions options;
  auto tuned = TuneMatMulParams(a, b, MidCluster(), cost, options);
  ASSERT_TRUE(tuned.ok());
  for (const MatMulParams& candidate : DefaultMatMulCandidates()) {
    options.candidates = {candidate};
    auto single = TuneMatMulParams(a, b, MidCluster(), cost, options);
    if (!single.ok()) continue;  // rejected by memory
    EXPECT_LE(tuned->predicted_seconds, single->predicted_seconds + 1e-9);
  }
}

TEST(TunerTest, RejectsIncompatibleLayouts) {
  TileLayout a(100, 100, 10, 10);
  TileLayout b(99, 100, 10, 10);
  TileOpCostModel cost;
  EXPECT_FALSE(TuneMatMulParams(a, b, MidCluster(), cost, TuneOptions{}).ok());
}

// ---------------------------------------------------------------------------
// Memory constraints
// ---------------------------------------------------------------------------

TEST(MemoryTest, TaskMemoryGrowsWithBlocks) {
  TileLayout a(32768, 32768, 2048, 2048);
  TileLayout b(32768, 32768, 2048, 2048);
  const int64_t small = MatMulJob::TaskMemoryBytes(a, b, MatMulParams{1, 1, 1});
  const int64_t big = MatMulJob::TaskMemoryBytes(a, b, MatMulParams{4, 4, 0});
  EXPECT_LT(small, big);
  // 1x1x1: one A tile + one B tile + one C tile = 3 * 32 MiB.
  EXPECT_EQ(small, 3 * 2048 * 2048 * 8);
}

TEST(MemoryTest, SlotMemorySharedAmongSlots) {
  ClusterConfig cluster = MidCluster();  // m1.large: 7.5 GB, 2 slots
  const double per_slot = SlotMemoryBytes(cluster, 1.0);
  EXPECT_NEAR(per_slot, cluster.machine.memory_bytes() / 2, 1.0);
}

TEST(MemoryTest, TinyMemoryRejectsAllCandidates) {
  TileLayout a(32768, 32768, 2048, 2048);  // 32 MiB tiles
  TileLayout b(32768, 32768, 2048, 2048);
  ClusterConfig cluster = MidCluster();
  cluster.machine.memory_mb = 64.0;  // < one task's 3-tile working set
  TileOpCostModel cost;
  auto tuned = TuneMatMulParams(a, b, cluster, cost, TuneOptions{});
  ASSERT_FALSE(tuned.ok());
  EXPECT_EQ(tuned.status().code(), StatusCode::kResourceExhausted);
}

TEST(MemoryTest, ScarceMemoryFiltersBigBlocks) {
  TileLayout a(32768, 32768, 2048, 2048);
  TileLayout b(32768, 32768, 2048, 2048);
  ClusterConfig cluster = MidCluster();
  // Room for ~6 tiles per slot (2 slots): blocks like 4x4xfull-k (256+
  // tiles) must be rejected, small splits accepted.
  cluster.machine.memory_mb = 400.0;
  TileOpCostModel cost;
  auto tuned = TuneMatMulParams(a, b, cluster, cost, TuneOptions{});
  ASSERT_TRUE(tuned.ok()) << tuned.status();
  EXPECT_GT(tuned->rejected_by_memory, 0);
  EXPECT_LE(MatMulJob::TaskMemoryBytes(a, b, tuned->params),
            SlotMemoryBytes(cluster, 0.8));
}

// ---------------------------------------------------------------------------
// Predictor integration
// ---------------------------------------------------------------------------

ProgramSpec DeepChainSpec() {
  // A single deep multiply where tuning matters a lot.
  Program p;
  p.Assign("C", Expr::Input("A", 8192, 131072) *
                    Expr::Input("B", 131072, 8192));
  ProgramSpec spec;
  spec.program = std::move(p);
  spec.inputs = {
      {"A", TileLayout::Square(8192, 131072, 2048)},
      {"B", TileLayout::Square(131072, 8192, 2048)},
  };
  return spec;
}

TEST(TunerIntegrationTest, TunedPredictionNoWorseThanDefault) {
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  auto untuned = PredictProgram(DeepChainSpec(), MidCluster(), options);
  ASSERT_TRUE(untuned.ok());
  options.tune_mm_per_job = true;
  auto tuned = PredictProgram(DeepChainSpec(), MidCluster(), options);
  ASSERT_TRUE(tuned.ok());
  EXPECT_LE(tuned->seconds, untuned->seconds * 1.01);
  // On this deep shape tuning should win decisively.
  EXPECT_LT(tuned->seconds, untuned->seconds * 0.8);
}

TEST(TunerIntegrationTest, TuningIsDeterministic) {
  PredictorOptions options;
  options.lowering.tile_dim = 2048;
  options.tune_mm_per_job = true;
  auto p1 = PredictProgram(DeepChainSpec(), MidCluster(), options);
  auto p2 = PredictProgram(DeepChainSpec(), MidCluster(), options);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_DOUBLE_EQ(p1->seconds, p2->seconds);
}

}  // namespace
}  // namespace cumulon
