#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/regression.h"

namespace cumulon {
namespace {

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 3 + 2*x1 - 0.5*x2
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    const double x1 = rng.NextDouble(0, 10);
    const double x2 = rng.NextDouble(-5, 5);
    features.push_back({x1, x2});
    targets.push_back(3.0 + 2.0 * x1 - 0.5 * x2);
  }
  auto fit = FitLeastSquares(features, targets);
  ASSERT_TRUE(fit.ok()) << fit.status();
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-8);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-8);
  EXPECT_NEAR(fit->coefficients[2], -0.5, 1e-8);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(LeastSquaresTest, NoisyFitHasReasonableR2) {
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0, 100);
    features.push_back({x});
    targets.push_back(1.0 + 0.1 * x + rng.NextGaussian() * 0.5);
  }
  auto fit = FitLeastSquares(features, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[1], 0.1, 0.02);
  EXPECT_GT(fit->r_squared, 0.8);
}

TEST(LeastSquaresTest, PredictEvaluatesModel) {
  LinearFit fit;
  fit.coefficients = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(fit.Predict({10.0, 100.0}), 1.0 + 20.0 + 300.0);
}

TEST(LeastSquaresTest, RejectsBadInputs) {
  EXPECT_FALSE(FitLeastSquares({}, {}).ok());
  EXPECT_FALSE(FitLeastSquares({{1.0}}, {1.0, 2.0}).ok());
  // Fewer observations than parameters.
  EXPECT_FALSE(FitLeastSquares({{1.0, 2.0}}, {1.0}).ok());
  // Ragged rows.
  EXPECT_FALSE(FitLeastSquares({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
}

TEST(LeastSquaresTest, DetectsCollinearFeatures) {
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  for (int i = 0; i < 10; ++i) {
    const double x = i;
    features.push_back({x, 2.0 * x});  // perfectly collinear
    targets.push_back(x);
  }
  auto fit = FitLeastSquares(features, targets);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LeastSquaresTest, ConstantTargetGivesPerfectInterceptFit) {
  std::vector<std::vector<double>> features = {{1.0}, {2.0}, {3.0}};
  std::vector<double> targets = {5.0, 5.0, 5.0};
  auto fit = FitLeastSquares(features, targets);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 5.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

TEST(RegressionCalibrationTest, FitsPositiveThroughputModels) {
  RegressionCalibrationOptions options;
  options.gemm_dims = {32, 48, 64, 96};  // keep the probes quick
  options.ew_dims = {64, 128, 256};
  options.repetitions = 4;  // best-of-n shields against scheduler noise
  auto calibration = CalibrateByRegression(options);
  ASSERT_TRUE(calibration.ok()) << calibration.status();
  EXPECT_GT(calibration->gemm_gflops(), 0.0);
  EXPECT_GT(calibration->ew_gelems(), 0.0);
  EXPECT_GT(calibration->transpose_gelems(), 0.0);
  // The linear flop/element models should explain kernel time well. The
  // thresholds are deliberately loose: this runs on shared CI machines
  // where timer noise is real (the calibrate CLI reports the true R^2,
  // typically > 0.99 on a quiet host).
  EXPECT_GT(calibration->gemm.r_squared, 0.7);
  EXPECT_GT(calibration->elementwise.r_squared, 0.6);
}

TEST(RegressionCalibrationTest, CostModelHasSaneRatios) {
  RegressionCalibrationOptions options;
  options.gemm_dims = {32, 48, 64, 96};
  options.ew_dims = {64, 128, 256};
  options.repetitions = 2;
  auto calibration = CalibrateByRegression(options);
  ASSERT_TRUE(calibration.ok());
  TileOpCostModel model = calibration->ToCostModel();
  // Element-wise passes move more elements per second than GEMM moves
  // flops only on weird hardware; what must hold is positivity and a
  // non-negative overhead.
  EXPECT_GT(model.ew_gelems_per_sec, 0.0);
  EXPECT_GT(model.transpose_gelems_per_sec, 0.0);
  EXPECT_GE(model.per_tile_overhead_seconds, 0.0);
}

TEST(RegressionCalibrationTest, RejectsDegenerateOptions) {
  RegressionCalibrationOptions options;
  options.gemm_dims = {64};
  EXPECT_FALSE(CalibrateByRegression(options).ok());
}

}  // namespace
}  // namespace cumulon
