#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "matrix/kernel_config.h"
#include "matrix/tile.h"
#include "matrix/tile_ops.h"

namespace cumulon {
namespace {

// Worst acceptable relative difference between the packed FMA kernel and
// the scalar oracle. Both accumulate each C element's k terms in ascending
// order; FMA only fuses the multiply-add rounding, so per-term error is
// bounded by one ulp of the product — measured worst case on this suite is
// below 1e-16.
constexpr double kFmaRelTol = 1e-13;

Tile RandomTile(int64_t rows, int64_t cols, Rng* rng) {
  Tile t(rows, cols);
  FillGaussian(&t, rng);
  return t;
}

/// max |a-b| / max(1, |a|) over all elements; asserts equal shapes.
double MaxRelDiff(const Tile& a, const Tile& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double worst = 0.0;
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      const double denom = std::max(1.0, std::abs(a.At(r, c)));
      worst = std::max(worst, std::abs(a.At(r, c) - b.At(r, c)) / denom);
    }
  }
  return worst;
}

void ExpectBitIdentical(const Tile& a, const Tile& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      // EXPECT_EQ on doubles is exact — that is the point of the oracle
      // contract for the non-FMA kernels.
      EXPECT_EQ(a.At(r, c), b.At(r, c)) << "at (" << r << "," << c << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Aligned tile memory
// ---------------------------------------------------------------------------

TEST(AlignedBufferTest, AlignUpAndFootprint) {
  EXPECT_EQ(AlignUp(0, 64), 0);
  EXPECT_EQ(AlignUp(1, 64), 64);
  EXPECT_EQ(AlignUp(64, 64), 64);
  EXPECT_EQ(AlignUp(65, 64), 128);
  EXPECT_EQ(AlignedFootprintBytes(128), 128);
  EXPECT_EQ(AlignedFootprintBytes(129), 192);
}

TEST(AlignedBufferTest, TileDataIsCacheLineAligned) {
  for (int64_t rows : {1, 3, 7, 64}) {
    Tile t(rows, rows);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % kCacheLineBytes, 0u)
        << rows << "x" << rows;
  }
}

TEST(AlignedBufferTest, TileMemoryBytesIsPaddedFootprint) {
  Tile t(4, 4);                        // 128-byte payload: already aligned
  EXPECT_EQ(t.MemoryBytes(), 128);
  EXPECT_EQ(t.SizeBytes(), 144);       // serialized adds the 16-byte header
  Tile odd(3, 3);                      // 72 bytes -> one extra line
  EXPECT_EQ(odd.MemoryBytes(), 128);
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

TEST(KernelConfigTest, ResolveKernelModePureCases) {
  // kScalar is always honored.
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kScalar, true, nullptr),
            KernelMode::kScalar);
  // kAuto / kSimd follow CPU capability.
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kAuto, true, nullptr),
            KernelMode::kSimd);
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kAuto, false, nullptr),
            KernelMode::kScalar);
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kSimd, false, nullptr),
            KernelMode::kScalar);
  // CUMULON_KERNEL=scalar emulates a no-AVX2 machine even for kSimd asks.
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kSimd, true, "scalar"),
            KernelMode::kScalar);
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kAuto, true, "scalar"),
            KernelMode::kScalar);
  // Other env values leave dispatch to capability.
  EXPECT_EQ(ResolveKernelModeWith(KernelMode::kAuto, true, "auto"),
            KernelMode::kSimd);
}

TEST(KernelConfigTest, ParseKernelMode) {
  KernelMode mode = KernelMode::kAuto;
  EXPECT_TRUE(ParseKernelMode("scalar", &mode));
  EXPECT_EQ(mode, KernelMode::kScalar);
  EXPECT_TRUE(ParseKernelMode("simd", &mode));
  EXPECT_EQ(mode, KernelMode::kSimd);
  EXPECT_TRUE(ParseKernelMode("auto", &mode));
  EXPECT_EQ(mode, KernelMode::kAuto);
  EXPECT_FALSE(ParseKernelMode("avx512", &mode));
  EXPECT_EQ(mode, KernelMode::kAuto) << "failed parse must not clobber";
}

TEST(KernelConfigTest, FromCacheSizesDerivesSaneBlocking) {
  // This machine's caches (48 KiB L1d, 2 MiB L2) and the fallback sizes.
  for (auto [l1, l2] : std::vector<std::pair<int64_t, int64_t>>{
           {48 * 1024, 2 * 1024 * 1024}, {0, 0}, {16 * 1024, 256 * 1024}}) {
    const KernelConfig cfg = KernelConfig::FromCacheSizes(l1, l2);
    EXPECT_GE(cfg.cache_block, 16);
    EXPECT_LE(cfg.cache_block, 256);
    EXPECT_EQ(cfg.cache_block & (cfg.cache_block - 1), 0)
        << "cache_block must be a power of two";
    EXPECT_EQ(cfg.pack_mc % kPackMr, 0);
    EXPECT_EQ(cfg.pack_nc % kPackNr, 0);
    EXPECT_GE(cfg.pack_kc, 64);
    EXPECT_LE(cfg.pack_kc, 512);
    EXPECT_GE(cfg.pack_mc, 4 * kPackMr);
  }
}

// ---------------------------------------------------------------------------
// Gemm: SIMD vs scalar oracle
// ---------------------------------------------------------------------------

struct GemmShape {
  int64_t m, k, n;
};

/// Edge shapes: micro-kernel tails on every side (m % 6, n % 8, lone
/// rows/cols), degenerate dims of 1, k crossing the pack_kc boundary, and
/// blocked interior shapes.
const GemmShape kEdgeShapes[] = {
    {1, 1, 1},   {1, 7, 5},    {6, 8, 8},    {7, 9, 13},     {13, 1, 6},
    {5, 300, 9}, {65, 130, 47}, {128, 128, 128}, {100, 700, 3}, {6, 6, 8},
    {12, 16, 16}, {1, 513, 1},
};

TEST(GemmKernelTest, SimdMatchesOracleOnEdgeShapes) {
  Rng rng(7);
  for (const GemmShape& s : kEdgeShapes) {
    for (double alpha : {1.0, 0.5}) {
      for (double beta : {0.0, 1.0, 2.0}) {
        Tile a = RandomTile(s.m, s.k, &rng);
        Tile b = RandomTile(s.k, s.n, &rng);
        Tile c0 = RandomTile(s.m, s.n, &rng);
        Tile c_scalar = c0;
        Tile c_simd = c0;
        ASSERT_TRUE(GemmWithMode(KernelMode::kScalar, a, b, alpha, beta,
                                 &c_scalar)
                        .ok());
        ASSERT_TRUE(
            GemmWithMode(KernelMode::kSimd, a, b, alpha, beta, &c_simd).ok());
        EXPECT_LE(MaxRelDiff(c_scalar, c_simd), kFmaRelTol)
            << s.m << "x" << s.k << "x" << s.n << " alpha=" << alpha
            << " beta=" << beta;
      }
    }
  }
}

TEST(GemmKernelTest, BetaZeroOverwritesPoisonedOutput) {
  // beta == 0 must *assign*, never read the destination: NaN garbage in C
  // has to disappear in both kernels.
  Rng rng(11);
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kSimd}) {
    Tile a = RandomTile(7, 9, &rng);
    Tile b = RandomTile(9, 13, &rng);
    Tile c(7, 13);
    FillTile(&c, std::numeric_limits<double>::quiet_NaN());
    ASSERT_TRUE(GemmWithMode(mode, a, b, 1.0, 0.0, &c).ok());
    for (int64_t r = 0; r < c.rows(); ++r) {
      for (int64_t col = 0; col < c.cols(); ++col) {
        EXPECT_FALSE(std::isnan(c.At(r, col)))
            << KernelModeName(mode) << " at (" << r << "," << col << ")";
      }
    }
  }
}

TEST(GemmKernelTest, ScalarOracleBitIdenticalAcrossCacheBlockSizes) {
  // The oracle's blocking is a pure loop-order change: every C element
  // still accumulates its k terms in ascending order, so results must be
  // bit-identical for ANY cache_block. (This is what lets tests compare
  // runs across configs.)
  Rng rng(13);
  Tile a = RandomTile(70, 130, &rng);
  Tile b = RandomTile(130, 50, &rng);
  const KernelConfig saved = GetKernelConfig();
  Tile reference(70, 50);
  for (int64_t block : {16, 64, 256}) {
    KernelConfig cfg = saved;
    cfg.cache_block = block;
    SetKernelConfig(cfg);
    Tile c(70, 50);
    FillTile(&c, 0.0);
    ASSERT_TRUE(GemmScalar(a, b, 1.0, 0.0, &c).ok());
    if (block == 16) {
      reference = c;
    } else {
      ExpectBitIdentical(reference, c);
    }
  }
  SetKernelConfig(saved);
}

TEST(GemmKernelTest, FuzzSimdVsScalar) {
  Rng rng(12345);
  for (int iter = 0; iter < 60; ++iter) {
    const int64_t m = rng.NextInt(1, 41);
    const int64_t k = rng.NextInt(1, 61);
    const int64_t n = rng.NextInt(1, 41);
    const double alpha = rng.NextDouble(-1.0, 1.0);
    const double beta = iter % 3 == 0 ? 0.0 : rng.NextDouble();
    Tile a = RandomTile(m, k, &rng);
    Tile b = RandomTile(k, n, &rng);
    Tile c0 = RandomTile(m, n, &rng);
    Tile c_scalar = c0;
    Tile c_simd = c0;
    ASSERT_TRUE(
        GemmWithMode(KernelMode::kScalar, a, b, alpha, beta, &c_scalar).ok());
    ASSERT_TRUE(
        GemmWithMode(KernelMode::kSimd, a, b, alpha, beta, &c_simd).ok());
    ASSERT_LE(MaxRelDiff(c_scalar, c_simd), kFmaRelTol)
        << "iter " << iter << ": " << m << "x" << k << "x" << n;
  }
}

// ---------------------------------------------------------------------------
// Element-wise / aggregate kernels: bit-identical across modes
// ---------------------------------------------------------------------------

TEST(EwKernelTest, BinaryOpsBitIdenticalToScalar) {
  Rng rng(21);
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                      BinaryOp::kDiv, BinaryOp::kMax, BinaryOp::kMin}) {
    for (int64_t n : {1, 3, 4, 5, 31, 257}) {
      Tile a = RandomTile(n, n, &rng);
      Tile b = RandomTile(n, n, &rng);
      Tile out_scalar(n, n), out_simd(n, n);
      ASSERT_TRUE(
          EwBinaryWithMode(KernelMode::kScalar, op, a, b, &out_scalar).ok());
      ASSERT_TRUE(
          EwBinaryWithMode(KernelMode::kSimd, op, a, b, &out_simd).ok());
      ExpectBitIdentical(out_scalar, out_simd);
    }
  }
}

TEST(EwKernelTest, MaxMinNanSemanticsMatchScalar) {
  // The vector max/min use compare+blend replicating std::max/min's NaN
  // behavior exactly; mixed NaN operands must come out bit-identical.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Tile a(2, 4), b(2, 4);
  const double avals[] = {nan, 1.0, nan, -2.0, 3.0, nan, 0.0, nan};
  const double bvals[] = {1.0, nan, nan, 5.0, nan, -1.0, nan, nan};
  for (int64_t i = 0; i < 8; ++i) {
    a.mutable_data()[i] = avals[i];
    b.mutable_data()[i] = bvals[i];
  }
  for (BinaryOp op : {BinaryOp::kMax, BinaryOp::kMin}) {
    Tile out_scalar(2, 4), out_simd(2, 4);
    ASSERT_TRUE(
        EwBinaryWithMode(KernelMode::kScalar, op, a, b, &out_scalar).ok());
    ASSERT_TRUE(
        EwBinaryWithMode(KernelMode::kSimd, op, a, b, &out_simd).ok());
    for (int64_t i = 0; i < 8; ++i) {
      const double s = out_scalar.data()[i];
      const double v = out_simd.data()[i];
      EXPECT_TRUE((std::isnan(s) && std::isnan(v)) || s == v)
          << BinaryOpName(op) << " lane " << i;
    }
  }
}

TEST(EwKernelTest, BroadcastAndUnaryBitIdenticalToScalar) {
  Rng rng(23);
  Tile a = RandomTile(9, 13, &rng);
  Tile row = RandomTile(1, 13, &rng);
  Tile col = RandomTile(9, 1, &rng);
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kMul, BinaryOp::kDiv}) {
    for (bool swapped : {false, true}) {
      Tile s1(9, 13), s2(9, 13);
      ASSERT_TRUE(EwBroadcastWithMode(KernelMode::kScalar, op, a, row, true,
                                      swapped, &s1)
                      .ok());
      ASSERT_TRUE(EwBroadcastWithMode(KernelMode::kSimd, op, a, row, true,
                                      swapped, &s2)
                      .ok());
      ExpectBitIdentical(s1, s2);
      ASSERT_TRUE(EwBroadcastWithMode(KernelMode::kScalar, op, a, col, false,
                                      swapped, &s1)
                      .ok());
      ASSERT_TRUE(EwBroadcastWithMode(KernelMode::kSimd, op, a, col, false,
                                      swapped, &s2)
                      .ok());
      ExpectBitIdentical(s1, s2);
    }
  }
  Tile u1(9, 13), u2(9, 13);
  ASSERT_TRUE(
      EwUnaryWithMode(KernelMode::kScalar, UnaryOp::kScale, a, 1.7, &u1).ok());
  ASSERT_TRUE(
      EwUnaryWithMode(KernelMode::kSimd, UnaryOp::kScale, a, 1.7, &u2).ok());
  ExpectBitIdentical(u1, u2);
  ASSERT_TRUE(
      EwUnaryWithMode(KernelMode::kScalar, UnaryOp::kAddScalar, a, -0.3, &u1)
          .ok());
  ASSERT_TRUE(
      EwUnaryWithMode(KernelMode::kSimd, UnaryOp::kAddScalar, a, -0.3, &u2)
          .ok());
  ExpectBitIdentical(u1, u2);
}

TEST(EwKernelTest, AccumulateAndColSumsBitIdenticalToScalar) {
  Rng rng(29);
  Tile x = RandomTile(17, 33, &rng);
  Tile acc0 = RandomTile(17, 33, &rng);
  Tile acc_scalar = acc0, acc_simd = acc0;
  ASSERT_TRUE(
      AccumulateIntoWithMode(KernelMode::kScalar, x, &acc_scalar).ok());
  ASSERT_TRUE(AccumulateIntoWithMode(KernelMode::kSimd, x, &acc_simd).ok());
  ExpectBitIdentical(acc_scalar, acc_simd);

  Tile cs0 = RandomTile(1, 33, &rng);
  Tile cs_scalar = cs0, cs_simd = cs0;
  ASSERT_TRUE(ColSumsIntoWithMode(KernelMode::kScalar, x, &cs_scalar).ok());
  ASSERT_TRUE(ColSumsIntoWithMode(KernelMode::kSimd, x, &cs_simd).ok());
  ExpectBitIdentical(cs_scalar, cs_simd);
}

TEST(EwKernelTest, FuzzEwBitIdentical) {
  Rng rng(31337);
  for (int iter = 0; iter < 40; ++iter) {
    const int64_t rows = rng.NextInt(1, 51);
    const int64_t cols = rng.NextInt(1, 51);
    const BinaryOp op = static_cast<BinaryOp>(iter % 6);
    Tile a = RandomTile(rows, cols, &rng);
    Tile b = RandomTile(rows, cols, &rng);
    Tile s(rows, cols), v(rows, cols);
    ASSERT_TRUE(EwBinaryWithMode(KernelMode::kScalar, op, a, b, &s).ok());
    ASSERT_TRUE(EwBinaryWithMode(KernelMode::kSimd, op, a, b, &v).ok());
    ExpectBitIdentical(s, v);
  }
}

}  // namespace
}  // namespace cumulon
