#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/machine.h"
#include "cloud/revocation.h"
#include "cluster/real_engine.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "exec/executor.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tile_store.h"
#include "matrix/tiled_matrix.h"
#include "obs/metrics.h"
#include "opt/elastic.h"
#include "opt/predictor.h"
#include "sched/elastic.h"
#include "sched/workload_manager.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// RevocationSchedule
// ---------------------------------------------------------------------------

TEST(RevocationScheduleTest, ScriptedKeepsEarliestEventPerMachine) {
  RevocationSchedule s = RevocationSchedule::Scripted(
      {{1, 50.0}, {2, 30.0}, {1, 20.0}, {-1, 5.0}});
  ASSERT_EQ(s.events().size(), 2u);
  // Sorted by time, one event per machine, earliest wins.
  EXPECT_EQ(s.events()[0].machine, 1);
  EXPECT_DOUBLE_EQ(s.events()[0].time_seconds, 20.0);
  EXPECT_EQ(s.events()[1].machine, 2);
  EXPECT_DOUBLE_EQ(s.events()[1].time_seconds, 30.0);
  EXPECT_DOUBLE_EQ(s.RevokedAtSeconds(1), 20.0);
  EXPECT_DOUBLE_EQ(s.RevokedAtSeconds(2), 30.0);
  EXPECT_EQ(s.RevokedAtSeconds(0), RevocationSchedule::kNever);
  EXPECT_EQ(s.RevokedAtSeconds(99), RevocationSchedule::kNever);
}

TEST(RevocationScheduleTest, SampleIsDeterministicInTheSeed) {
  const double hazard = 2.0;  // revocations per hour: most machines die
  RevocationSchedule a =
      RevocationSchedule::Sample(42, 8, hazard, 7200.0, /*first=*/2);
  RevocationSchedule b =
      RevocationSchedule::Sample(42, 8, hazard, 7200.0, /*first=*/2);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].machine, b.events()[i].machine);
    EXPECT_DOUBLE_EQ(a.events()[i].time_seconds, b.events()[i].time_seconds);
  }
  EXPECT_FALSE(a.empty());
  for (const RevocationEvent& e : a.events()) {
    EXPECT_GE(e.machine, 2);  // on-demand machines are never sampled
    EXPECT_LT(e.machine, 8);
    EXPECT_GE(e.time_seconds, 0.0);
    EXPECT_LT(e.time_seconds, 7200.0);  // horizon filter
  }
}

TEST(RevocationScheduleTest, SampleZeroHazardIsEmpty) {
  EXPECT_TRUE(RevocationSchedule::Sample(7, 16, 0.0, 3600.0).empty());
}

TEST(RevocationScheduleTest, SampleAllOnDemandIsEmpty) {
  EXPECT_TRUE(
      RevocationSchedule::Sample(7, 4, 10.0, 3600.0, /*first=*/4).empty());
}

// ---------------------------------------------------------------------------
// RevocationController
// ---------------------------------------------------------------------------

TEST(RevocationControllerTest, ClaimFiredIsExactlyOncePerMachine) {
  RevocationController ctrl(
      RevocationSchedule::Scripted({{1, 10.0}, {3, 20.0}}));
  EXPECT_EQ(ctrl.fired_count(), 0);
  EXPECT_TRUE(ctrl.ClaimFired(1));
  EXPECT_FALSE(ctrl.ClaimFired(1));  // already observed
  EXPECT_FALSE(ctrl.ClaimFired(0));  // never revoked
  EXPECT_EQ(ctrl.fired_count(), 1);
  EXPECT_TRUE(ctrl.ClaimFired(3));
  EXPECT_EQ(ctrl.fired_count(), 2);
}

TEST(RevocationControllerTest, IsRevokedAtBoundaryIsInclusive) {
  RevocationController ctrl(RevocationSchedule::Scripted({{0, 10.0}}));
  EXPECT_FALSE(ctrl.IsRevokedAt(0, 9.999));
  EXPECT_TRUE(ctrl.IsRevokedAt(0, 10.0));  // the instant itself is dead
  EXPECT_TRUE(ctrl.IsRevokedAt(0, 11.0));
  EXPECT_FALSE(ctrl.IsRevokedAt(1, 1e12));  // unscheduled machine lives on
}

TEST(RevocationControllerTest, FallbackMachineScansAfterFromAndWraps) {
  RevocationController ctrl(
      RevocationSchedule::Scripted({{1, 0.0}, {2, 0.0}}));
  // From the dying machine 1, the scan skips dead 2 and lands on 3.
  EXPECT_EQ(ctrl.FallbackMachine(1, 4, 5.0), 3);
  // From 3 the scan wraps to 0.
  EXPECT_EQ(ctrl.FallbackMachine(3, 4, 5.0), 0);
  // Before the instants everything is alive.
  EXPECT_EQ(ctrl.FallbackMachine(0, 4, -1.0), 1);
}

TEST(RevocationControllerTest, FallbackMachineReportsFleetGone) {
  RevocationController ctrl(
      RevocationSchedule::Scripted({{0, 0.0}, {1, 0.0}}));
  EXPECT_EQ(ctrl.FallbackMachine(0, 2, 1.0), -1);
}

TEST(RevocationControllerTest, OriginAccumulatesAcrossJobs) {
  RevocationController ctrl(RevocationSchedule::Scripted({{0, 100.0}}));
  EXPECT_DOUBLE_EQ(ctrl.origin_seconds(), 0.0);
  ctrl.AdvanceOrigin(12.5);
  ctrl.AdvanceOrigin(7.5);
  EXPECT_DOUBLE_EQ(ctrl.origin_seconds(), 20.0);
}

// ---------------------------------------------------------------------------
// ElasticProvisioner
// ---------------------------------------------------------------------------

ElasticPolicy TestPolicy() {
  ElasticPolicy policy;
  policy.min_machines = 1;
  policy.max_machines = 8;
  policy.target_backlog_seconds_per_machine = 100.0;
  policy.max_spot_fraction = 0.5;
  return policy;
}

TEST(ElasticProvisionerTest, ScalesOutUnderBacklog) {
  ElasticProvisioner prov(TestPolicy(), 0.65, 0.05);
  FleetDecision d = prov.Replan({1, 0}, /*backlog=*/350.0,
                                /*horizon=*/300.0, /*max_slowdown=*/10.0);
  EXPECT_EQ(d.fleet.machines, 4);  // ceil(350 / 100)
  EXPECT_TRUE(d.scaled_out);
  EXPECT_FALSE(d.scaled_in);
}

TEST(ElasticProvisionerTest, BacklogTargetIsClampedToPolicyMax) {
  ElasticProvisioner prov(TestPolicy(), 0.65, 0.05);
  FleetDecision d = prov.Replan({2, 0}, 1e9, 300.0, 10.0);
  EXPECT_EQ(d.fleet.machines, 8);
}

TEST(ElasticProvisionerTest, ScalesInWhenIdle) {
  ElasticProvisioner prov(TestPolicy(), 0.65, 0.05);
  FleetDecision d = prov.Replan({6, 2}, /*backlog=*/0.0, 300.0, 10.0);
  EXPECT_EQ(d.fleet.machines, 1);
  EXPECT_TRUE(d.scaled_in);
  EXPECT_FALSE(d.scaled_out);
}

TEST(ElasticProvisionerTest, IdleFleetKeptWarmWhenScaleInDisabled) {
  ElasticPolicy policy = TestPolicy();
  policy.scale_in_when_idle = false;
  ElasticProvisioner prov(policy, 0.65, 0.05);
  FleetDecision d = prov.Replan({6, 2}, 0.0, 300.0, 10.0);
  EXPECT_EQ(d.fleet.machines, 6);
  EXPECT_FALSE(d.scaled_in);
}

TEST(ElasticProvisionerTest, FreeDiscountFillsTheSpotQuota) {
  // With zero hazard the rework slowdown is 1.0, so every discounted
  // machine is pure profit up to the max_spot_fraction bound.
  ElasticProvisioner prov(TestPolicy(), 0.65, /*hazard=*/0.0);
  FleetDecision d = prov.Replan({4, 0}, 400.0, 300.0, 10.0);
  EXPECT_EQ(d.fleet.machines, 4);
  EXPECT_EQ(d.fleet.spot_machines, 2);  // floor(4 * 0.5)
  EXPECT_EQ(d.fleet.on_demand_machines(), 2);
  EXPECT_DOUBLE_EQ(d.expected_slowdown, 1.0);
}

TEST(ElasticProvisionerTest, TightSlowdownCapForcesOnDemand) {
  // Deadline pressure: any positive hazard makes a spot mix carry a
  // slowdown strictly above 1.0, so a cap of 1.0 rules them all out.
  ElasticProvisioner prov(TestPolicy(), 0.65, /*hazard=*/1.0);
  FleetDecision d = prov.Replan({4, 0}, 400.0, 3600.0, /*max_slowdown=*/1.0);
  EXPECT_EQ(d.fleet.spot_machines, 0);
  EXPECT_DOUBLE_EQ(d.expected_slowdown, 1.0);
}

TEST(ElasticProvisionerTest, RuinousHazardDegeneratesToOnDemand) {
  // When the expected rework eats the discount, all-on-demand is the
  // cheapest rate even though spot machines are allowed.
  ElasticProvisioner prov(TestPolicy(), /*discount=*/0.10,
                          /*hazard=*/50.0);
  FleetDecision d = prov.Replan({4, 0}, 400.0, 3600.0, 10.0);
  EXPECT_EQ(d.fleet.spot_machines, 0);
}

TEST(ElasticProvisionerTest, EmitsReplanMetrics) {
  MetricsRegistry metrics;
  ElasticProvisioner prov(TestPolicy(), 0.65, 0.0, &metrics);
  (void)prov.Replan({1, 0}, 350.0, 300.0, 10.0);
  (void)prov.Replan({4, 2}, 0.0, 300.0, 10.0);
  EXPECT_EQ(metrics.counter("sched.replan.decisions")->Value(), 2);
  EXPECT_EQ(metrics.counter("sched.replan.scale_out")->Value(), 1);
  EXPECT_EQ(metrics.counter("sched.replan.scale_in")->Value(), 1);
  EXPECT_EQ(metrics.gauge("sched.replan.fleet_machines")->Value(), 1);
  EXPECT_EQ(metrics.gauge("sched.replan.fleet_spot")->Value(), 0);
}

// ---------------------------------------------------------------------------
// Sim engine: mid-job revocation
// ---------------------------------------------------------------------------

JobSpec MakeSimJob(int tasks, double cpu_seconds) {
  JobSpec job;
  job.name = "sim";
  for (int i = 0; i < tasks; ++i) {
    Task t;
    t.name = StrCat("t", i);
    t.cost.cpu_seconds_ref = cpu_seconds;
    job.tasks.push_back(std::move(t));
  }
  return job;
}

TEST(SimRevocationTest, RevocationKillsInFlightWorkAndSlowsTheJob) {
  ClusterConfig cluster{MachineProfile{}, 4, 2};
  SimEngineOptions clean;
  clean.task_startup_seconds = 0.0;

  SimEngine clean_engine(cluster, clean);
  auto clean_stats = clean_engine.RunJob(MakeSimJob(32, 10.0));
  ASSERT_TRUE(clean_stats.ok()) << clean_stats.status();

  // Machine 3 dies one second in: its in-flight attempts are killed and
  // re-placed on the survivors.
  RevocationController ctrl(RevocationSchedule::Scripted({{3, 1.0}}));
  SimEngineOptions faulted = clean;
  faulted.revocation = &ctrl;
  MetricsRegistry metrics;
  faulted.metrics = &metrics;
  SimEngine faulted_engine(cluster, faulted);
  auto stats = faulted_engine.RunJob(MakeSimJob(32, 10.0));
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(stats->revoked_machines, 1);
  EXPECT_GE(stats->rescheduled_tasks, 1);
  EXPECT_GT(stats->revoked_wasted_seconds, 0.0);
  EXPECT_GT(stats->duration_seconds, clean_stats->duration_seconds);
  // Nothing ran on the dead machine after its instant.
  for (const TaskRunInfo& run : stats->task_runs) {
    if (run.machine == 3) {
      EXPECT_LE(run.start_seconds + run.duration_seconds, 1.0 + 1e-9);
    }
  }
  EXPECT_EQ(metrics.counter("cluster.revoked.machines")->Value(), 1);
  EXPECT_GE(metrics.counter("cluster.revoked.tasks")->Value(), 1);
}

TEST(SimRevocationTest, SeededScheduleReplaysBitIdentically) {
  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RevocationSchedule schedule =
      RevocationSchedule::Sample(99, 4, /*hazard=*/60.0, 600.0, /*first=*/1);
  ASSERT_FALSE(schedule.empty());

  auto run_once = [&](JobStats* out) {
    RevocationController ctrl(schedule);
    SimEngineOptions options;
    options.task_startup_seconds = 0.0;
    options.noise_sigma = 0.3;  // exercise the noise-multiplier replay
    options.task_failure_probability = 0.05;
    options.revocation = &ctrl;
    SimEngine engine(cluster, options);
    auto stats = engine.RunJob(MakeSimJob(48, 5.0));
    ASSERT_TRUE(stats.ok()) << stats.status();
    *out = std::move(stats).value();
  };

  JobStats a, b;
  run_once(&a);
  run_once(&b);
  EXPECT_DOUBLE_EQ(a.duration_seconds, b.duration_seconds);
  EXPECT_EQ(a.rescheduled_tasks, b.rescheduled_tasks);
  EXPECT_DOUBLE_EQ(a.revoked_wasted_seconds, b.revoked_wasted_seconds);
  ASSERT_EQ(a.task_runs.size(), b.task_runs.size());
  for (size_t i = 0; i < a.task_runs.size(); ++i) {
    EXPECT_EQ(a.task_runs[i].machine, b.task_runs[i].machine);
    EXPECT_EQ(a.task_runs[i].slot, b.task_runs[i].slot);
    EXPECT_EQ(a.task_runs[i].attempts, b.task_runs[i].attempts);
    EXPECT_DOUBLE_EQ(a.task_runs[i].start_seconds,
                     b.task_runs[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.task_runs[i].duration_seconds,
                     b.task_runs[i].duration_seconds);
  }
}

TEST(SimRevocationTest, EmptyScheduleMatchesNullController) {
  // Determinism guard: wiring the controller in with nothing scheduled
  // must not change placement, timing, or RNG consumption.
  ClusterConfig cluster{MachineProfile{}, 3, 2};
  SimEngineOptions base;
  base.noise_sigma = 0.4;
  base.task_failure_probability = 0.1;

  SimEngine null_engine(cluster, base);
  auto null_stats = null_engine.RunJob(MakeSimJob(24, 2.0));
  ASSERT_TRUE(null_stats.ok()) << null_stats.status();

  RevocationController ctrl(RevocationSchedule::Scripted({}));
  SimEngineOptions wired = base;
  wired.revocation = &ctrl;
  SimEngine wired_engine(cluster, wired);
  auto wired_stats = wired_engine.RunJob(MakeSimJob(24, 2.0));
  ASSERT_TRUE(wired_stats.ok()) << wired_stats.status();

  EXPECT_DOUBLE_EQ(null_stats->duration_seconds,
                   wired_stats->duration_seconds);
  EXPECT_EQ(wired_stats->revoked_machines, 0);
  EXPECT_EQ(wired_stats->rescheduled_tasks, 0);
  ASSERT_EQ(null_stats->task_runs.size(), wired_stats->task_runs.size());
  for (size_t i = 0; i < null_stats->task_runs.size(); ++i) {
    EXPECT_EQ(null_stats->task_runs[i].machine,
              wired_stats->task_runs[i].machine);
    EXPECT_DOUBLE_EQ(null_stats->task_runs[i].start_seconds,
                     wired_stats->task_runs[i].start_seconds);
  }
}

TEST(SimRevocationTest, WholeFleetRevokedFailsTheJob) {
  RevocationController ctrl(
      RevocationSchedule::Scripted({{0, 0.0}, {1, 0.0}}));
  SimEngineOptions options;
  options.revocation = &ctrl;
  SimEngine engine(ClusterConfig{MachineProfile{}, 2, 2}, options);
  auto stats = engine.RunJob(MakeSimJob(4, 1.0));
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("whole fleet revoked"),
            std::string::npos);
}

TEST(SimRevocationTest, OriginAdvancesByEachJobsMakespan) {
  // The schedule clock is cumulative engine time: a machine revoked at
  // t=8 survives a 5-second job and dies during the next one.
  RevocationController ctrl(RevocationSchedule::Scripted({{1, 8.0}}));
  SimEngineOptions options;
  options.task_startup_seconds = 0.0;
  options.revocation = &ctrl;
  SimEngine engine(ClusterConfig{MachineProfile{}, 2, 1}, options);

  auto first = engine.RunJob(MakeSimJob(2, 5.0));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->revoked_machines, 0);
  EXPECT_DOUBLE_EQ(ctrl.origin_seconds(), first->duration_seconds);

  auto second = engine.RunJob(MakeSimJob(2, 5.0));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->revoked_machines, 1);
  EXPECT_EQ(ctrl.fired_count(), 1);
}

// ---------------------------------------------------------------------------
// Real engine: the example programs survive seeded revocations
// bit-identically, across scheduling policies and work stealing
// ---------------------------------------------------------------------------

constexpr int64_t kTile = 8;

void BindInput(const std::string& name, const DenseMatrix& dense,
               TileStore* store,
               std::map<std::string, TiledMatrix>* bindings) {
  TiledMatrix m{name,
                TileLayout::Square(dense.rows(), dense.cols(), kTile)};
  ASSERT_TRUE(StoreDense(dense, m, store).ok());
  bindings->insert_or_assign(name, m);
}

DenseMatrix GaussianMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  return DenseMatrix::Gaussian(rows, cols, &rng);
}

DenseMatrix PositiveMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) m.Set(r, c, rng.NextDouble() + 0.5);
  }
  return m;
}

DenseMatrix ColumnStochastic(int64_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (int64_t c = 0; c < n; ++c) {
    double sum = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      const double v = rng.NextDouble() + 0.01;
      m.Set(r, c, v);
      sum += v;
    }
    for (int64_t r = 0; r < n; ++r) m.Set(r, c, m.At(r, c) / sum);
  }
  return m;
}

DenseMatrix BinaryLabels(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, 1);
  for (int64_t r = 0; r < rows; ++r) {
    m.Set(r, 0, rng.NextDouble() < 0.5 ? 1.0 : 0.0);
  }
  return m;
}

/// One workload case: a program, its input builder, and the assignment
/// targets whose final matrices the test compares bit-for-bit.
struct E8Case {
  std::string name;
  Program program;
  std::vector<std::string> targets;
};

std::vector<E8Case> MainCases() {
  std::vector<E8Case> cases;
  RsvdSpec rsvd;
  rsvd.m = 24;
  rsvd.n = 16;
  rsvd.l = 8;
  cases.push_back({"rsvd", BuildRsvd1(rsvd), {"Y"}});
  GnmfSpec gnmf;
  gnmf.m = 16;
  gnmf.n = 16;
  gnmf.k = 8;
  cases.push_back({"gnmf", BuildGnmfIteration(gnmf), {"H", "W"}});
  PageRankSpec pr;
  pr.n = 16;
  cases.push_back({"pagerank", BuildPageRankIteration(pr), {"p"}});
  LinRegSpec linreg;
  linreg.samples = 24;
  linreg.features = 8;
  cases.push_back({"linreg", BuildLinRegStep(linreg), {"w"}});
  return cases;
}

void BindMainInputs(TileStore* store,
                    std::map<std::string, TiledMatrix>* bindings) {
  BindInput("A", GaussianMatrix(24, 16, 201), store, bindings);
  BindInput("Omega", GaussianMatrix(16, 8, 202), store, bindings);
  BindInput("V", PositiveMatrix(16, 16, 203), store, bindings);
  BindInput("W", PositiveMatrix(16, 8, 204), store, bindings);
  BindInput("H", PositiveMatrix(8, 16, 205), store, bindings);
  BindInput("M", ColumnStochastic(16, 206), store, bindings);
  BindInput("p", DenseMatrix::Constant(16, 1, 1.0 / 16.0), store, bindings);
  BindInput("X", GaussianMatrix(24, 8, 207), store, bindings);
  BindInput("w", GaussianMatrix(8, 1, 208), store, bindings);
  BindInput("y", GaussianMatrix(24, 1, 209), store, bindings);
}

/// LogReg shares input names (X, w, y) with LinReg, so it runs in its own
/// store — same fleet, same controller.
E8Case LogRegCase() {
  LogRegSpec spec;
  spec.samples = 24;
  spec.features = 8;
  return {"logreg", BuildLogRegStep(spec), {"w"}};
}

void BindLogRegInputs(TileStore* store,
                      std::map<std::string, TiledMatrix>* bindings) {
  BindInput("X", GaussianMatrix(24, 8, 207), store, bindings);
  BindInput("w", GaussianMatrix(8, 1, 208), store, bindings);
  BindInput("y", BinaryLabels(24, 210), store, bindings);
}

/// Runs the given cases through one WorkloadManager over a shared store
/// and engine, and loads every target's final dense matrix.
void RunCasesThroughManager(const std::vector<E8Case>& cases,
                            void (*bind)(TileStore*,
                                         std::map<std::string, TiledMatrix>*),
                            SchedPolicy policy, bool stealing,
                            RevocationController* ctrl,
                            std::map<std::string, DenseMatrix>* outputs) {
  InMemoryTileStore store;
  std::map<std::string, TiledMatrix> bindings;
  bind(&store, &bindings);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngineOptions engine_options;
  engine_options.revocation = ctrl;
  RealEngine engine(cluster, engine_options);
  TileOpCostModel cost;
  WorkloadManagerOptions options;
  options.policy = policy;
  options.max_concurrent_plans = 2;
  options.executor.enable_work_stealing = stealing;
  WorkloadManager manager(&store, &engine, &cost, options);

  // target name -> the tiled matrix it was materialized as
  std::vector<std::pair<std::string, TiledMatrix>> wanted;
  for (const E8Case& c : cases) {
    LoweringOptions lowering;
    lowering.tile_dim = kTile;
    lowering.temp_prefix = c.name + "_tmp";  // disjoint temp namespaces
    auto lowered = Lower(OptimizeProgram(c.program), bindings, lowering);
    ASSERT_TRUE(lowered.ok()) << c.name << ": " << lowered.status();
    for (const std::string& target : c.targets) {
      wanted.emplace_back(c.name + "/" + target,
                          lowered->outputs.at(target));
    }
    Submission submission;
    submission.name = c.name;
    submission.plan = std::move(lowered->plan);
    auto id = manager.Submit(std::move(submission));
    ASSERT_TRUE(id.ok()) << c.name << ": " << id.status();
  }
  const std::vector<PlanOutcome> outcomes = manager.Drain();
  for (const PlanOutcome& outcome : outcomes) {
    ASSERT_EQ(outcome.state, PlanState::kDone)
        << outcome.name << ": " << outcome.status;
  }
  for (const auto& [key, tiled] : wanted) {
    auto dense = LoadDense(tiled, &store);
    ASSERT_TRUE(dense.ok()) << key << ": " << dense.status();
    outputs->insert_or_assign(key, std::move(dense).value());
  }
}

/// The whole example-program suite under one fault plan: the four
/// disjoint-input programs share a manager, LogReg follows in its own
/// store. `ctrl` may be null (the clean reference).
void RunE8Workload(SchedPolicy policy, bool stealing,
                   RevocationController* ctrl,
                   std::map<std::string, DenseMatrix>* outputs) {
  RunCasesThroughManager(MainCases(), &BindMainInputs, policy, stealing,
                         ctrl, outputs);
  if (::testing::Test::HasFatalFailure()) return;
  RunCasesThroughManager({LogRegCase()}, &BindLogRegInputs, policy, stealing,
                         ctrl, outputs);
}

TEST(RevocationE8Test, SeededRevocationsPreserveResultsBitForBit) {
  // Clean reference: no fault plan, FIFO, no stealing.
  std::map<std::string, DenseMatrix> reference;
  RunE8Workload(SchedPolicy::kFifo, false, nullptr, &reference);
  ASSERT_FALSE(reference.empty());

  const SchedPolicy policies[] = {SchedPolicy::kFifo, SchedPolicy::kFairShare,
                                  SchedPolicy::kEdf};
  for (SchedPolicy policy : policies) {
    for (bool stealing : {false, true}) {
      SCOPED_TRACE(StrCat("policy=", SchedPolicyName(policy),
                          " stealing=", stealing ? "on" : "off"));
      // Machine 1 is gone before the first task; machine 3 dies almost
      // immediately after the wall clock arms. Both losses relocate work
      // onto the two survivors.
      RevocationController ctrl(RevocationSchedule::Scripted(
          {{1, 0.0}, {3, 0.01}}));
      std::map<std::string, DenseMatrix> faulted;
      RunE8Workload(policy, stealing, &ctrl, &faulted);
      if (::testing::Test::HasFatalFailure()) return;

      EXPECT_GE(ctrl.fired_count(), 1);
      ASSERT_EQ(faulted.size(), reference.size());
      for (const auto& [key, expected] : reference) {
        auto it = faulted.find(key);
        ASSERT_NE(it, faulted.end()) << key;
        auto diff = expected.MaxAbsDiff(it->second);
        ASSERT_TRUE(diff.ok()) << key << ": " << diff.status();
        EXPECT_EQ(diff.value(), 0.0)
            << key << " diverged under revocation";
      }
    }
  }
}

TEST(RevocationE8Test, RealEngineCountsRevokedMachines) {
  // The losses are folded into the executing plans' stats exactly once.
  RevocationController ctrl(
      RevocationSchedule::Scripted({{1, 0.0}, {2, 0.0}}));
  InMemoryTileStore store;
  std::map<std::string, TiledMatrix> bindings;
  BindMainInputs(&store, &bindings);

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngineOptions engine_options;
  engine_options.revocation = &ctrl;
  MetricsRegistry metrics;
  engine_options.metrics = &metrics;
  RealEngine engine(cluster, engine_options);
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});

  LoweringOptions lowering;
  lowering.tile_dim = kTile;
  RsvdSpec spec;
  spec.m = 24;
  spec.n = 16;
  spec.l = 8;
  auto lowered =
      Lower(OptimizeProgram(BuildRsvd1(spec)), bindings, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  auto stats = executor.Run(lowered->plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  EXPECT_EQ(stats->revoked_machines, 2);
  EXPECT_EQ(ctrl.fired_count(), 2);
  EXPECT_EQ(metrics.counter("cluster.revoked.machines")->Value(), 2);
  // A second plan on the same controller observes nothing new.
  auto again = executor.Run(lowered->plan);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->revoked_machines, 0);
  EXPECT_EQ(ctrl.fired_count(), 2);
}

TEST(RevocationE8Test, RealEngineWholeFleetRevokedFailsTheJob) {
  RevocationController ctrl(
      RevocationSchedule::Scripted({{0, 0.0}, {1, 0.0}}));
  RealEngineOptions options;
  options.revocation = &ctrl;
  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 1}, options);
  JobSpec job;
  Task t;
  t.name = "doomed";
  t.work = [](int) { return Status::OK(); };
  job.tasks.push_back(std::move(t));
  auto stats = engine.RunJob(job);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("whole fleet revoked"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// RunSpotWorkload: the online re-planning loop
// ---------------------------------------------------------------------------

SpotSubmission TinyLinReg(const std::string& name) {
  LinRegSpec spec;
  spec.samples = 64;
  spec.features = 16;
  SpotSubmission s;
  s.name = name;
  s.spec.program = BuildLinRegStep(spec);
  s.spec.inputs = {
      TiledMatrix{"X", TileLayout::Square(spec.samples, spec.features, 8)},
      TiledMatrix{"w", TileLayout::Square(spec.features, 1, 8)},
      TiledMatrix{"y", TileLayout::Square(spec.samples, 1, 8)},
  };
  return s;
}

SpotWorkloadOptions TinySpotOptions() {
  SpotWorkloadOptions options;
  options.machine = MachineProfile{};
  options.policy.min_machines = 2;
  options.policy.max_machines = 4;
  options.predictor.lowering.tile_dim = 8;
  options.billing.quantum_seconds = 1.0;
  options.billing.minimum_seconds = 0.0;
  options.spot_hazard_per_hour = 0.02;
  return options;
}

TEST(SpotWorkloadTest, DeterministicInSeedAndArrivals) {
  std::vector<SpotSubmission> submissions = {TinyLinReg("a"), TinyLinReg("b"),
                                             TinyLinReg("c")};
  auto first = RunSpotWorkload(submissions, TinySpotOptions());
  auto second = RunSpotWorkload(submissions, TinySpotOptions());
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_DOUBLE_EQ(first->total_dollars, second->total_dollars);
  EXPECT_DOUBLE_EQ(first->makespan_seconds, second->makespan_seconds);
  EXPECT_EQ(first->revocations, second->revocations);
  ASSERT_EQ(first->outcomes.size(), second->outcomes.size());
  for (size_t i = 0; i < first->outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(first->outcomes[i].dollars,
                     second->outcomes[i].dollars);
    EXPECT_DOUBLE_EQ(first->outcomes[i].spot_price_multiplier,
                     second->outcomes[i].spot_price_multiplier);
  }
}

TEST(SpotWorkloadTest, SpotMixUndercutsStaticOnDemand) {
  std::vector<SpotSubmission> submissions = {TinyLinReg("a"), TinyLinReg("b"),
                                             TinyLinReg("c")};
  SpotWorkloadOptions spot = TinySpotOptions();
  SpotWorkloadOptions on_demand = TinySpotOptions();
  on_demand.allow_spot = false;
  auto with_spot = RunSpotWorkload(submissions, spot);
  auto static_run = RunSpotWorkload(submissions, on_demand);
  ASSERT_TRUE(with_spot.ok()) << with_spot.status();
  ASSERT_TRUE(static_run.ok()) << static_run.status();
  ASSERT_EQ(with_spot->admitted, 3);
  ASSERT_EQ(static_run->admitted, 3);
  EXPECT_LT(with_spot->total_dollars, static_run->total_dollars);
}

TEST(SpotWorkloadTest, BudgetAdmissionRejects) {
  SpotSubmission broke = TinyLinReg("broke");
  broke.budget_dollars = 1e-9;
  auto result = RunSpotWorkload({broke}, TinySpotOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->admitted, 0);
  EXPECT_EQ(result->rejected, 1);
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_FALSE(result->outcomes[0].admitted);
  EXPECT_NE(result->outcomes[0].rejection.find("budget"),
            std::string::npos);
}

TEST(SpotWorkloadTest, DeadlineAdmissionRejects) {
  SpotSubmission late = TinyLinReg("late");
  late.deadline_seconds = 1e-6;
  auto result = RunSpotWorkload({late}, TinySpotOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rejected, 1);
  ASSERT_EQ(result->outcomes.size(), 1u);
  EXPECT_NE(result->outcomes[0].rejection.find("deadline"),
            std::string::npos);
}

}  // namespace
}  // namespace cumulon
