#include "dfs/tile_cache.h"

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

std::shared_ptr<const Tile> MakeTile(int64_t rows, int64_t cols,
                                     double value) {
  auto tile = std::make_shared<Tile>(rows, cols);
  FillTile(tile.get(), value);
  return tile;
}

// 4x4 doubles + header = 144 serialized bytes; the unit of all capacity
// math below. The in-memory footprint is smaller here (128 bytes: the
// 16-byte header is not materialized and the payload rounds up to whole
// cache lines), and that is what resident_bytes and eviction budget on.
const int64_t kTileBytes = MakeTile(4, 4, 0.0)->SizeBytes();
const int64_t kTileMemoryBytes = MakeTile(4, 4, 0.0)->MemoryBytes();

TEST(TileCacheTest, MissThenHit) {
  TileCache cache(10 * kTileBytes, /*num_shards=*/1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", MakeTile(4, 4, 1.0));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->At(0, 0), 1.0);
  const TileCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.resident_tiles, 1);
  EXPECT_EQ(stats.resident_bytes, kTileMemoryBytes);
  EXPECT_EQ(stats.hit_bytes, kTileBytes);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(TileCacheTest, EvictsLeastRecentlyUsedFirst) {
  // Room for exactly two tiles in one shard.
  TileCache cache(2 * kTileBytes, /*num_shards=*/1);
  cache.Put("a", MakeTile(4, 4, 1.0));
  cache.Put("b", MakeTile(4, 4, 2.0));
  cache.Put("c", MakeTile(4, 4, 3.0));  // evicts "a", the LRU entry
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1);
  EXPECT_EQ(cache.Stats().resident_tiles, 2);
}

TEST(TileCacheTest, GetPromotesEntryToMostRecentlyUsed) {
  TileCache cache(2 * kTileBytes, /*num_shards=*/1);
  cache.Put("a", MakeTile(4, 4, 1.0));
  cache.Put("b", MakeTile(4, 4, 2.0));
  ASSERT_NE(cache.Get("a"), nullptr);  // "b" is now the LRU entry
  cache.Put("c", MakeTile(4, 4, 3.0));
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(TileCacheTest, OversizedTileIsNotCached) {
  TileCache cache(kTileBytes, /*num_shards=*/1);
  cache.Put("big", MakeTile(64, 64, 1.0));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.Stats().resident_tiles, 0);
  EXPECT_EQ(cache.Stats().insertions, 0);
}

TEST(TileCacheTest, NonPositiveCapacityDisablesCaching) {
  TileCache cache(0);
  cache.Put("a", MakeTile(4, 4, 1.0));
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(TileCacheTest, PutReplacesExistingEntry) {
  TileCache cache(4 * kTileBytes, /*num_shards=*/1);
  cache.Put("a", MakeTile(4, 4, 1.0));
  cache.Put("a", MakeTile(4, 4, 9.0));
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->At(0, 0), 9.0);
  EXPECT_EQ(cache.Stats().resident_tiles, 1);
}

TEST(TileCacheTest, InvalidateDropsKeyAndPrefixDropsSubtree) {
  TileCache cache(16 * kTileBytes, /*num_shards=*/4);
  cache.Put("/matrix/A/t_0_0", MakeTile(4, 4, 1.0));
  cache.Put("/matrix/A/t_0_1", MakeTile(4, 4, 2.0));
  cache.Put("/matrix/AB/t_0_0", MakeTile(4, 4, 3.0));
  cache.Invalidate("/matrix/A/t_0_0");
  EXPECT_EQ(cache.Get("/matrix/A/t_0_0"), nullptr);
  EXPECT_NE(cache.Get("/matrix/A/t_0_1"), nullptr);
  EXPECT_EQ(cache.InvalidatePrefix("/matrix/A/"), 1);
  EXPECT_EQ(cache.Get("/matrix/A/t_0_1"), nullptr);
  // Prefix match is exact: /matrix/AB is not under /matrix/A/.
  EXPECT_NE(cache.Get("/matrix/AB/t_0_0"), nullptr);
}

TEST(TileCacheTest, ConcurrentMixedOperationsStayConsistent) {
  // Small capacity forces constant eviction while 8 threads hammer
  // overlapping keys. Every hit must return the exact tile stored under
  // that key (value = key index), never a torn or mismatched payload.
  TileCache cache(8 * kTileBytes, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key_index = (i * 7 + t * 13) % kKeys;
        const std::string key = StrCat("k", key_index);
        if (auto hit = cache.Get(key)) {
          ASSERT_EQ(hit->At(0, 0), static_cast<double>(key_index))
              << "cache returned another key's tile";
        } else {
          cache.Put(key, MakeTile(4, 4, static_cast<double>(key_index)));
        }
        if (i % 97 == 0) cache.Invalidate(key);
        if (i % 501 == 0) cache.InvalidatePrefix("k1");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const TileCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups(), kThreads * kOpsPerThread);
  EXPECT_LE(stats.resident_bytes, cache.capacity_bytes());
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.evictions, 0);
}

TEST(TileCacheGroupTest, NodesAreIsolatedAndStatsSum) {
  TileCacheGroup group(/*num_nodes=*/3, /*bytes_per_node=*/16 * kTileBytes);
  group.node(0)->Put("a", MakeTile(4, 4, 1.0));
  EXPECT_NE(group.node(0)->Get("a"), nullptr);
  EXPECT_EQ(group.node(1)->Get("a"), nullptr);  // per-node, not shared
  EXPECT_EQ(group.node(-1), nullptr);           // client reads: no cache
  EXPECT_EQ(group.node(3), nullptr);
  const TileCacheStats total = group.TotalStats();
  EXPECT_EQ(total.hits, 1);
  EXPECT_EQ(total.misses, 1);
  group.InvalidateAll("a");
  EXPECT_EQ(group.node(0)->Get("a"), nullptr);
}

TEST(TileCacheTest, BudgetLeavesRoomAfterSlotWorkingSets) {
  // 8 GB machine, 2 slots, 80% of each slot's share reserved for tasks:
  // cache gets the remaining 20% = 1.6 GB.
  const double memory = 8.0 * (1 << 30);
  const int64_t budget = NodeTileCacheBudget(memory, 2, 0.8);
  EXPECT_EQ(budget, static_cast<int64_t>(memory * 0.2));
  // Fully reserved memory leaves no cache.
  EXPECT_EQ(NodeTileCacheBudget(memory, 2, 1.0), 0);
}

// ---------------------------------------------------------------------------
// DfsTileStore integration
// ---------------------------------------------------------------------------

DfsOptions SmallDfs() {
  DfsOptions o;
  o.num_nodes = 4;
  o.replication = 2;
  return o;
}

TEST(DfsTileStoreCacheTest, SecondReadServedFromCacheSkipsDfs) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  TileCacheGroup caches(4, 1 << 20);
  store.AttachCaches(&caches);

  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(4, 4, 5.0), 0).ok());
  // A different node misses once, then hits; the DFS sees exactly one read.
  ASSERT_TRUE(store.Get("m", TileId{0, 0}, 1).ok());
  const int64_t dfs_reads_after_first = dfs.TotalStats().reads;
  auto again = store.Get("m", TileId{0, 0}, 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->At(0, 0), 5.0);
  EXPECT_EQ(dfs.TotalStats().reads, dfs_reads_after_first);
  // Writer node 0 was seeded at Put time, so its first read already hits.
  ASSERT_TRUE(store.Get("m", TileId{0, 0}, 0).ok());
  EXPECT_EQ(dfs.TotalStats().reads, dfs_reads_after_first);
  EXPECT_GE(caches.TotalStats().hits, 2);
}

TEST(DfsTileStoreCacheTest, OverwriteInvalidatesEveryNodesCachedCopy) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  TileCacheGroup caches(4, 1 << 20);
  store.AttachCaches(&caches);

  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(4, 4, 1.0), 0).ok());
  for (int node = 0; node < 4; ++node) {
    ASSERT_TRUE(store.Get("m", TileId{0, 0}, node).ok());
  }
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(4, 4, 2.0), 1).ok());
  for (int node = 0; node < 4; ++node) {
    auto got = store.Get("m", TileId{0, 0}, node);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)->At(0, 0), 2.0) << "node " << node << " served stale data";
  }
}

TEST(DfsTileStoreCacheTest, DeleteMatrixDropsCachedTiles) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  TileCacheGroup caches(4, 1 << 20);
  store.AttachCaches(&caches);

  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(4, 4, 1.0), 0).ok());
  ASSERT_TRUE(store.Get("m", TileId{0, 0}, 2).ok());
  ASSERT_TRUE(store.DeleteMatrix("m").ok());
  EXPECT_FALSE(store.Get("m", TileId{0, 0}, 2).ok());
  EXPECT_FALSE(store.Get("m", TileId{0, 0}, 0).ok());
}

TEST(DfsTileStoreCacheTest, ChecksumStillCatchesCorruptionOnMiss) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  TileCacheGroup caches(4, 1 << 20);
  store.AttachCaches(&caches);

  ASSERT_TRUE(store.Put("m", TileId{0, 0}, MakeTile(4, 4, 1.0), 0).ok());
  // Corrupt the block behind the store's back, then drop the cached copies
  // so the next read must go to the DFS: verification still fires.
  auto corrupted = MakeTile(4, 4, 666.0);
  ASSERT_TRUE(dfs.Write(DfsTileStore::TilePath("m", TileId{0, 0}),
                        corrupted->SizeBytes(), 0, corrupted).ok());
  caches.Clear();
  auto got = store.Get("m", TileId{0, 0}, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  EXPECT_NE(got.status().message().find("checksum"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a real multiply must be bit-identical with and without the
// cache, under concurrent task slots re-reading shared input tiles.
// ---------------------------------------------------------------------------

Result<PlanStats> RunRealMultiply(bool enable_cache, TiledMatrix* c_out,
                                  SimDfs* dfs, DfsTileStore* store) {
  TiledMatrix a{"A", TileLayout::Square(512, 512, 128)};
  TiledMatrix b{"B", TileLayout::Square(512, 512, 128)};
  TiledMatrix c{"C", TileLayout::Square(512, 512, 128)};
  Rng rng(42);  // same seed both runs -> identical inputs
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(a, FillKind::kGaussian, 0, &rng, store));
  CUMULON_RETURN_IF_ERROR(
      GenerateMatrix(b, FillKind::kGaussian, 0, &rng, store));

  ClusterConfig cluster{MachineProfile{}, 4, 2};
  RealEngineOptions engine_options;
  engine_options.enable_tile_cache = enable_cache;
  engine_options.cache_bytes_per_node = enable_cache ? (64 << 20) : 0;
  RealEngine engine(cluster, engine_options);
  store->AttachCaches(engine.tile_caches());

  TileOpCostModel cost;
  ExecutorOptions exec_options;
  exec_options.job_startup_seconds = 0.0;
  Executor executor(store, &engine, &cost, exec_options);
  PhysicalPlan plan;
  CUMULON_RETURN_IF_ERROR(AddMatMul(a, b, c, MatMulParams{1, 1, 0}, {}, &plan));
  auto stats = executor.Run(plan);
  store->AttachCaches(nullptr);
  *c_out = c;
  (void)dfs;
  return stats;
}

TEST(ExecCacheTest, RealMultiplyBitIdenticalWithAndWithoutCache) {
  SimDfs dfs_off(SmallDfs()), dfs_on(SmallDfs());
  DfsTileStore store_off(&dfs_off, /*verify_checksums=*/true);
  DfsTileStore store_on(&dfs_on, /*verify_checksums=*/true);

  TiledMatrix c_off{"", TileLayout::Square(1, 1, 1)};
  TiledMatrix c_on = c_off;
  auto stats_off = RunRealMultiply(false, &c_off, &dfs_off, &store_off);
  ASSERT_TRUE(stats_off.ok()) << stats_off.status();
  auto stats_on = RunRealMultiply(true, &c_on, &dfs_on, &store_on);
  ASSERT_TRUE(stats_on.ok()) << stats_on.status();

  EXPECT_EQ(stats_off->cache_hits, 0);
  EXPECT_GT(stats_on->cache_hits, 0) << "cache never hit; test is vacuous";

  // Bit-identical outputs, tile by tile.
  const TileLayout& L = c_off.layout;
  for (int64_t gr = 0; gr < L.grid_rows(); ++gr) {
    for (int64_t gc = 0; gc < L.grid_cols(); ++gc) {
      auto off = store_off.Get(c_off.name, TileId{gr, gc}, -1);
      auto on = store_on.Get(c_on.name, TileId{gr, gc}, -1);
      ASSERT_TRUE(off.ok()) << off.status();
      ASSERT_TRUE(on.ok()) << on.status();
      ASSERT_EQ((*off)->size(), (*on)->size());
      for (int64_t i = 0; i < (*off)->size(); ++i) {
        ASSERT_EQ((*off)->data()[i], (*on)->data()[i])
            << "tile (" << gr << "," << gc << ") differs at element " << i;
      }
    }
  }
}

}  // namespace
}  // namespace cumulon
