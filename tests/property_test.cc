// Cross-cutting property tests: scheduling-theory bounds on the simulated
// engine, kernel algebra identities over random inputs, and optimizer
// consistency properties.

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "cloud/machine.h"
#include "cloud/revocation.h"
#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "matrix/dense_matrix.h"
#include "matrix/tile_ops.h"
#include "opt/search.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Greedy list scheduling: classic Graham bounds must hold for any job.
// ---------------------------------------------------------------------------

class SchedulingBoundTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, uint64_t>> {};

TEST_P(SchedulingBoundTest, MakespanWithinGrahamBounds) {
  const auto [machines, slots, num_tasks, seed] = GetParam();
  MachineProfile profile;
  profile.cores = slots;  // no oversubscription effects in this test
  profile.cpu_gflops = 1.0;
  ClusterConfig cluster{profile, machines, slots};
  SimEngineOptions options;
  options.task_startup_seconds = 0.0;
  options.replication = 1;
  SimEngine engine(cluster, options);

  Rng rng(seed);
  JobSpec job;
  double total_work = 0.0;
  double max_task = 0.0;
  for (int i = 0; i < num_tasks; ++i) {
    Task task;
    task.cost.cpu_seconds_ref = rng.NextDouble(0.1, 10.0);
    total_work += task.cost.cpu_seconds_ref;
    max_task = std::max(max_task, task.cost.cpu_seconds_ref);
    job.tasks.push_back(std::move(task));
  }
  auto stats = engine.RunJob(job);
  ASSERT_TRUE(stats.ok());

  const int m = machines * slots;
  const double lower = std::max(total_work / m, max_task);
  // Graham: greedy list scheduling <= work/m + longest task.
  const double upper = total_work / m + max_task;
  EXPECT_GE(stats->duration_seconds, lower - 1e-9);
  EXPECT_LE(stats->duration_seconds, upper + 1e-9);
  // Conservation: scheduled task time equals submitted work.
  EXPECT_NEAR(stats->total_task_seconds, total_work, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SchedulingBoundTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(1, 2),
                       ::testing::Values(5, 40, 200),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------------
// Kernel algebra identities on random tiles
// ---------------------------------------------------------------------------

class KernelIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelIdentityTest, TransposeOfProductIsReversedProductOfTransposes) {
  Rng rng(GetParam());
  const int64_t m = 5 + rng.NextInt(0, 20);
  const int64_t k = 5 + rng.NextInt(0, 20);
  const int64_t n = 5 + rng.NextInt(0, 20);
  Tile a(m, k), b(k, n);
  FillGaussian(&a, &rng);
  FillGaussian(&b, &rng);

  // (A B)^T
  Tile ab(m, n), ab_t(n, m);
  ASSERT_TRUE(Gemm(a, b, 1.0, 0.0, &ab).ok());
  ASSERT_TRUE(TransposeTile(ab, &ab_t).ok());
  // B^T A^T
  Tile a_t(k, m), b_t(n, k), bt_at(n, m);
  ASSERT_TRUE(TransposeTile(a, &a_t).ok());
  ASSERT_TRUE(TransposeTile(b, &b_t).ok());
  ASSERT_TRUE(Gemm(b_t, a_t, 1.0, 0.0, &bt_at).ok());

  auto diff = MaxAbsDiff(ab_t, bt_at);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST_P(KernelIdentityTest, GemmDistributesOverAddition) {
  Rng rng(GetParam() + 100);
  const int64_t m = 4 + rng.NextInt(0, 12);
  const int64_t k = 4 + rng.NextInt(0, 12);
  const int64_t n = 4 + rng.NextInt(0, 12);
  Tile a(m, k), b1(k, n), b2(k, n);
  FillGaussian(&a, &rng);
  FillGaussian(&b1, &rng);
  FillGaussian(&b2, &rng);

  // A*(B1+B2)
  Tile b_sum(k, n), left(m, n);
  ASSERT_TRUE(EwBinary(BinaryOp::kAdd, b1, b2, &b_sum).ok());
  ASSERT_TRUE(Gemm(a, b_sum, 1.0, 0.0, &left).ok());
  // A*B1 + A*B2 via accumulation.
  Tile right(m, n);
  ASSERT_TRUE(Gemm(a, b1, 1.0, 0.0, &right).ok());
  ASSERT_TRUE(Gemm(a, b2, 1.0, 1.0, &right).ok());

  auto diff = MaxAbsDiff(left, right);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST_P(KernelIdentityTest, RowColSumsCommuteToTotal) {
  Rng rng(GetParam() + 200);
  const int64_t m = 3 + rng.NextInt(0, 15);
  const int64_t n = 3 + rng.NextInt(0, 15);
  Tile t(m, n);
  FillGaussian(&t, &rng);
  Tile rows(m, 1), cols(1, n);
  ASSERT_TRUE(RowSumsInto(t, &rows).ok());
  ASSERT_TRUE(ColSumsInto(t, &cols).ok());
  EXPECT_NEAR(TileSum(rows), TileSum(cols), 1e-9);
  EXPECT_NEAR(TileSum(rows), TileSum(t), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelIdentityTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Optimizer selection consistency
// ---------------------------------------------------------------------------

std::vector<PlanPoint> RandomPoints(uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<PlanPoint> points(count);
  for (PlanPoint& p : points) {
    p.seconds = rng.NextDouble(10, 10000);
    p.dollars = rng.NextDouble(0.01, 50);
  }
  return points;
}

class SelectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionPropertyTest, FrontierSelectionsMatchFullSetSelections) {
  const auto points = RandomPoints(GetParam(), 60);
  const auto frontier = ParetoFrontier(points);
  // Any constrained optimum over the full set is reproducible from the
  // frontier alone (the frontier loses no optimal choices).
  Rng rng(GetParam() + 999);
  for (int trial = 0; trial < 20; ++trial) {
    const double deadline = rng.NextDouble(10, 11000);
    auto full = MinCostUnderDeadline(points, deadline);
    auto reduced = MinCostUnderDeadline(frontier, deadline);
    ASSERT_EQ(full.ok(), reduced.ok());
    if (full.ok()) {
      EXPECT_DOUBLE_EQ(full->dollars, reduced->dollars);
    }
    const double budget = rng.NextDouble(0.01, 60);
    auto full_b = MinTimeUnderBudget(points, budget);
    auto reduced_b = MinTimeUnderBudget(frontier, budget);
    ASSERT_EQ(full_b.ok(), reduced_b.ok());
    if (full_b.ok()) {
      EXPECT_DOUBLE_EQ(full_b->seconds, reduced_b->seconds);
    }
  }
}

TEST_P(SelectionPropertyTest, FrontierIsSubsetAndUndominated) {
  const auto points = RandomPoints(GetParam() + 1, 40);
  const auto frontier = ParetoFrontier(points);
  EXPECT_LE(frontier.size(), points.size());
  EXPECT_FALSE(frontier.empty());
  for (const PlanPoint& f : frontier) {
    for (const PlanPoint& p : points) {
      EXPECT_FALSE(p.seconds < f.seconds && p.dollars < f.dollars);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Spot billing under mid-quantum revocation: random (usage, revocation,
// quantum, minimum) draws must respect the provider's charging rules.
// ---------------------------------------------------------------------------

class RevokedBillingPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RevokedBillingPropertyTest, ChargeRespectsBillingLaws) {
  Rng rng(GetParam() * 1315423911ull + 17);
  MachineProfile machine;
  machine.price_per_hour = 3.6;  // $0.001 per second: easy to reason about
  for (int trial = 0; trial < 200; ++trial) {
    BillingPolicy billing;
    billing.quantum_seconds = rng.NextDouble(1.0, 900.0);
    billing.minimum_seconds =
        rng.NextDouble() < 0.5 ? 0.0 : rng.NextDouble(0.0, 300.0);
    const double seconds = rng.NextDouble(0.0, 7200.0);
    const double revoked_at = rng.NextDouble(0.0, 7200.0);

    const double cost = MachineDollarCostWithRevocation(
        machine, seconds, revoked_at, billing);
    const double rate = machine.price_per_hour / 3600.0;

    EXPECT_GE(cost, 0.0);
    // Never billed past the revocation instant: the provider forgives the
    // partial-quantum round-up a revocation interrupts.
    EXPECT_LE(cost, revoked_at * rate + 1e-9);
    // Never billed more than an un-revoked lease of the same length.
    EXPECT_LE(cost,
              machine.price_per_hour * BilledSeconds(seconds, billing) /
                      3600.0 +
                  1e-9);
    // A surviving machine (revocation beyond the lease) pays the plain
    // quantum-rounded price.
    if (revoked_at >= BilledSeconds(seconds, billing)) {
      EXPECT_NEAR(cost,
                  machine.price_per_hour *
                      BilledSeconds(seconds, billing) / 3600.0,
                  1e-9);
    }
    // Monotone in usage: asking for more time never costs less.
    const double longer = seconds + rng.NextDouble(0.0, 1800.0);
    EXPECT_GE(MachineDollarCostWithRevocation(machine, longer, revoked_at,
                                              billing),
              cost - 1e-9);
    // Monotone in the revocation instant: dying later never costs less.
    const double later = revoked_at + rng.NextDouble(0.0, 1800.0);
    EXPECT_GE(MachineDollarCostWithRevocation(machine, seconds, later,
                                              billing),
              cost - 1e-9);
  }
}

TEST_P(RevokedBillingPropertyTest, QuantumAndMinimumRounding) {
  Rng rng(GetParam() * 2654435761ull + 3);
  MachineProfile machine;
  machine.price_per_hour = 3600.0;  // $1 per second
  for (int trial = 0; trial < 200; ++trial) {
    BillingPolicy billing;
    billing.quantum_seconds = rng.NextDouble(1.0, 600.0);
    billing.minimum_seconds = rng.NextDouble(0.0, 600.0);
    const double seconds = rng.NextDouble(0.0, 3600.0);

    const double billed = BilledSeconds(seconds, billing);
    // At least the minimum, at least the usage, a whole number of quanta.
    EXPECT_GE(billed, billing.minimum_seconds - 1e-9);
    EXPECT_GE(billed, seconds - 1e-9);
    const double quanta = billed / billing.quantum_seconds;
    EXPECT_NEAR(quanta, std::round(quanta), 1e-6);
    EXPECT_LT(billed,
              std::max(seconds, billing.minimum_seconds) +
                  billing.quantum_seconds + 1e-9);

    // A never-revoked lease is the plain billed price.
    EXPECT_NEAR(MachineDollarCostWithRevocation(
                    machine, seconds, RevocationSchedule::kNever, billing),
                machine.price_per_hour * billed / 3600.0, 1e-6);
    // A machine revoked before the lease even starts costs nothing.
    EXPECT_DOUBLE_EQ(
        MachineDollarCostWithRevocation(machine, seconds, 0.0, billing),
        0.0);
    EXPECT_DOUBLE_EQ(
        MachineDollarCostWithRevocation(machine, seconds, -5.0, billing),
        0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RevokedBillingPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace cumulon
