#include "verify/verify.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/sim_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"
#include "exec/physical_plan.h"
#include "lang/expr.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"
#include "obs/metrics.h"
#include "sched/workload_manager.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Logical-IR passes: each mutation flips exactly one invariant and must be
// caught under its typed verify.* reason.
// ---------------------------------------------------------------------------

TEST(VerifyExprTest, WellFormedProgramIsClean) {
  auto a = Expr::Input("A", 16, 8);
  auto b = Expr::Input("B", 8, 16);
  Program p;
  p.Assign("C", a * b);
  p.Assign("D", Scale(Expr::Input("C", 16, 16), 2.0));
  const VerifyReport report = VerifyProgram(p);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifyExprTest, ShapeMutationCaught) {
  // The factories would refuse this, so the mutation goes in through the
  // test backdoor: a MatMul whose inner dimensions disagree.
  auto a = Expr::Input("A", 16, 8);
  auto b = Expr::Input("B", 9, 16);  // 8 != 9
  auto bad = Expr::MakeUncheckedForTest(ExprKind::kMatMul, 16, 16, a, b);
  const VerifyReport report = VerifyExpr(bad);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.expr.shape")) << report.ToString();
}

TEST(VerifyExprTest, WrongResultShapeCaught) {
  auto a = Expr::Input("A", 16, 8);
  auto b = Expr::Input("B", 8, 16);
  // Inner dims agree but the node claims a 4x4 result.
  auto bad = Expr::MakeUncheckedForTest(ExprKind::kMatMul, 4, 4, a, b);
  const VerifyReport report = VerifyExpr(bad);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.expr.shape")) << report.ToString();
}

TEST(VerifyExprTest, CycleMutationCaught) {
  auto a = Expr::Input("A", 8, 8);
  auto u = Expr::EwUnary(UnaryOp::kScale, a, 2.0);
  auto v = Expr::EwUnary(UnaryOp::kScale, u, 3.0);
  // Tie v's descendant back to v: u -> v -> u.
  Expr::MutateLeftForTest(u, v);
  const VerifyReport report = VerifyExpr(v);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.expr.cycle")) << report.ToString();
}

TEST(VerifyExprTest, DanglingOperandCaught) {
  auto bad = Expr::MakeUncheckedForTest(ExprKind::kMatMul, 8, 8,
                                        Expr::Input("A", 8, 8), nullptr);
  const VerifyReport report = VerifyExpr(bad);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.expr.dangling")) << report.ToString();

  // A leaf with child edges is the dual corruption.
  auto leafy = Expr::MakeUncheckedForTest(ExprKind::kInput, 8, 8,
                                          Expr::Input("A", 8, 8), nullptr,
                                          "B");
  EXPECT_TRUE(VerifyExpr(leafy).Has("verify.expr.dangling"));
}

TEST(VerifyExprTest, CseUnsoundnessCaught) {
  // Two Input leaves with the same name but different shapes: lowering's
  // key-indexed reuse would substitute one for the other.
  auto a1 = Expr::Input("A", 16, 8);
  auto a2 = Expr::Input("A", 8, 8);
  auto bad = Expr::MakeUncheckedForTest(ExprKind::kMatMul, 16, 8, a1, a2);
  const VerifyReport report = VerifyExpr(bad);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.expr.cse")) << report.ToString();
}

TEST(VerifyProgramTest, UnboundInputCaught) {
  Program p;
  p.Assign("C", Scale(Expr::Input("ghost", 8, 8), 2.0));
  LogicalVerifyOptions options;
  options.require_bound = true;
  const VerifyReport report = VerifyProgram(p, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.program.unbound")) << report.ToString();

  // Earlier targets satisfy later reads; bindings satisfy the rest.
  Program ok;
  ok.Assign("X", Scale(Expr::Input("A", 8, 8), 2.0));
  ok.Assign("Y", Scale(Expr::Input("X", 8, 8), 3.0));
  options.bindings["A"] = {8, 8};
  EXPECT_TRUE(VerifyProgram(ok, options).ok());
}

TEST(VerifyProgramTest, BindingShapeClashCaught) {
  Program p;
  p.Assign("C", Scale(Expr::Input("A", 8, 8), 2.0));
  LogicalVerifyOptions options;
  options.bindings["A"] = {16, 16};  // bound shape disagrees with the use
  const VerifyReport report = VerifyProgram(p, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.program.unbound")) << report.ToString();
}

TEST(VerifyReportTest, StatusLeadsWithTypedReasonPrefix) {
  VerifyReport report;
  report.Add("verify.plan.dependency", "first");
  report.Add("verify.split", "second");
  const Status status = report.ToStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message().rfind("[verify.plan.dependency] ", 0), 0u)
      << status.message();
  // Every further issue is still in the message.
  EXPECT_NE(status.message().find("verify.split"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Physical-plan passes.
// ---------------------------------------------------------------------------

constexpr int64_t kTile = 8;

TiledMatrix Square(const std::string& name, int64_t dim) {
  return TiledMatrix{name, TileLayout::Square(dim, dim, kTile)};
}

/// A two-job chain: T = A * B, C = ew(T).
PhysicalPlan MakeChainPlan() {
  PhysicalPlan plan;
  CUMULON_CHECK(AddMatMul(Square("A", 32), Square("B", 32), Square("T", 32),
                          MatMulParams{}, {}, &plan)
                    .ok());
  CUMULON_CHECK(AddEwChain(Square("T", 32), Square("C", 32), {}, &plan).ok());
  return plan;
}

PlanVerifyOptions ExternalOptions(std::set<std::string> resident) {
  PlanVerifyOptions options;
  options.check_external = true;
  options.external_matrices = std::move(resident);
  return options;
}

TEST(VerifyPlanTest, WellFormedPlanIsClean) {
  const PhysicalPlan plan = MakeChainPlan();
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(VerifyPlanTest, DroppedProducerCaught) {
  PhysicalPlan plan = MakeChainPlan();
  // Drop the MatMul job: the ew job's input 'T' now has no producer and
  // is not DFS-resident.
  plan.jobs.erase(plan.jobs.begin());
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.dependency")) << report.ToString();
}

TEST(VerifyPlanTest, CycledEdgeCaught) {
  PhysicalPlan plan = MakeChainPlan();
  // Reverse the job order: the consumer now runs before its producer,
  // which is exactly a cycle in the implicit dependency DAG.
  std::swap(plan.jobs[0], plan.jobs[1]);
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.dependency")) << report.ToString();
}

TEST(VerifyPlanTest, DuplicateProducerCaught) {
  PhysicalPlan plan = MakeChainPlan();
  // A second writer of 'C'.
  CUMULON_CHECK(AddEwChain(Square("T", 32), Square("C", 32), {}, &plan).ok());
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.dependency")) << report.ToString();
}

TEST(VerifyPlanTest, SkewedTileDimensionCaught) {
  // B's tile grid disagrees with A's on the shared k axis; the job's own
  // Build-time validation must fail and surface as verify.plan.build.
  PhysicalPlan plan;
  TiledMatrix b{"B", TileLayout::Square(32, 32, kTile * 2)};
  CUMULON_CHECK(AddMatMul(Square("A", 32), b, Square("T", 32),
                          MatMulParams{}, {}, &plan)
                    .ok());
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.build")) << report.ToString();
}

TEST(VerifyPlanTest, MalformedSplitCaught) {
  PhysicalPlan plan;
  CUMULON_CHECK(AddMatMul(Square("A", 32), Square("B", 32), Square("T", 32),
                          MatMulParams{0, 1, 0}, {}, &plan)
                    .ok());
  const VerifyReport report = VerifyPlan(plan, ExternalOptions({"A", "B"}));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.split")) << report.ToString();
}

TEST(VerifySplitTest, StandaloneScreening) {
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{1, 1, 0}).ok());
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{2, 4, 8}, 16, 16, 16).ok());
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{3, 3, 5}, 16, 16, 16).ok());
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{0, 1, 0})
                  .Has("verify.split"));
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{1, 0, 0})
                  .Has("verify.split"));
  EXPECT_TRUE(VerifyMatMulSplit(MatMulParams{1, 1, -2})
                  .Has("verify.split"));
}

/// A job that fabricates its tile outputs, so coverage mutations (gap /
/// double write) can be injected without corrupting a real operator.
class FakeTilesJob : public PhysicalJob {
 public:
  FakeTilesJob(std::string name, std::string matrix,
               std::vector<TileId> tiles)
      : name_(std::move(name)),
        matrix_(std::move(matrix)),
        tiles_(std::move(tiles)) {}

  const std::string& name() const override { return name_; }
  Result<BuiltJob> Build(const BuildContext&) const override {
    BuiltJob built;
    built.spec.name = name_;
    for (const TileId& id : tiles_) {
      built.task_outputs.push_back({TileOutput{matrix_, id, kTile * kTile}});
    }
    return built;
  }
  std::vector<std::string> InputMatrices() const override { return {}; }
  std::vector<std::string> OutputMatrices() const override {
    return {matrix_};
  }
  std::string DebugString() const override { return name_; }

 private:
  std::string name_;
  std::string matrix_;
  std::vector<TileId> tiles_;
};

TEST(VerifyPlanTest, CoverageGapCaught) {
  PhysicalPlan plan;
  // 2x2 grid with (1,0) missing.
  plan.jobs.push_back(std::make_unique<FakeTilesJob>(
      "fake", "M",
      std::vector<TileId>{{0, 0}, {0, 1}, {1, 1}}));
  const VerifyReport report = VerifyPlan(plan);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.coverage")) << report.ToString();
}

TEST(VerifyPlanTest, DoubleWriteCaught) {
  PhysicalPlan plan;
  plan.jobs.push_back(std::make_unique<FakeTilesJob>(
      "fake", "M", std::vector<TileId>{{0, 0}, {0, 0}, {0, 1}}));
  const VerifyReport report = VerifyPlan(plan);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.coverage")) << report.ToString();
}

TEST(VerifyPlanTest, DeclaredOutputWithNoTilesCaught) {
  PhysicalPlan plan;
  plan.jobs.push_back(
      std::make_unique<FakeTilesJob>("fake", "M", std::vector<TileId>{}));
  const VerifyReport report = VerifyPlan(plan);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.coverage")) << report.ToString();
}

TEST(VerifyPlanTest, InfeasibleBudgetCaught) {
  const PhysicalPlan plan = MakeChainPlan();
  PlanVerifyOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.cache_reserve_bytes = 2 << 20;  // reservation exceeds the budget
  const VerifyReport report = VerifyPlan(plan, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.budget.infeasible")) << report.ToString();

  options.cache_reserve_bytes = 1 << 19;
  EXPECT_TRUE(VerifyPlan(plan, options).ok());
}

TEST(VerifyPlanTest, MissingDeterminismContractCaught) {
  const PhysicalPlan plan = MakeChainPlan();  // hand-built: unstamped
  PlanVerifyOptions options;
  options.require_determinism = true;
  const VerifyReport report = VerifyPlan(plan, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("verify.plan.determinism")) << report.ToString();

  // Without the requirement an unstamped plan is legal (direct manager
  // submissions), but a stamped-yet-unresolved contract never is.
  options.require_determinism = false;
  EXPECT_TRUE(VerifyPlan(plan, options).ok());
  PhysicalPlan stamped = MakeChainPlan();
  stamped.determinism = {true, 11, ReduceMode::kAuto};
  EXPECT_TRUE(VerifyPlan(stamped, options).Has("verify.plan.determinism"));
}

// ---------------------------------------------------------------------------
// Pipeline edges.
// ---------------------------------------------------------------------------

TEST(VerifyPipelineTest, LowerStampsTheDeterminismContract) {
  InMemoryTileStore store;
  TiledMatrix a{"A", TileLayout::Square(16, 16, kTile)};
  Rng rng{7};
  CUMULON_CHECK(
      StoreDense(DenseMatrix::Gaussian(16, 16, &rng), a, &store).ok());
  Program p;
  p.Assign("C", Scale(Expr::Input("A", 16, 16), 2.0));
  LoweringOptions lowering;
  lowering.tile_dim = kTile;
  lowering.seed = 42;
  auto lowered = Lower(p, {{"A", a}}, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  EXPECT_TRUE(lowered->plan.determinism.recorded);
  EXPECT_EQ(lowered->plan.determinism.seed, 42u);
  EXPECT_NE(lowered->plan.determinism.reduce_mode, ReduceMode::kAuto);

  PlanVerifyOptions options;
  options.require_determinism = true;
  EXPECT_TRUE(VerifyPlan(lowered->plan, options).ok());
}

TEST(VerifyPipelineTest, ReloweringWithReboundVersionedNamesDoesNotCollide) {
  // Regression for the name-collision bug the verifier flushed out: a
  // binding carrying a versioned name from a previous Lower() call
  // ("x@v1", as rebound by lang/driver.h between iterations) must not be
  // reused as the fresh target name — the job would consume and produce
  // the same matrix.
  InMemoryTileStore store;
  TiledMatrix x{"x", TileLayout::Square(kTile, kTile, kTile)};
  CUMULON_CHECK(
      StoreDense(DenseMatrix::Constant(kTile, kTile, 1.0), x, &store).ok());
  Program p;
  p.Assign("x", Scale(Expr::Input("x", kTile, kTile), 2.0));
  LoweringOptions lowering;
  lowering.tile_dim = kTile;

  std::map<std::string, TiledMatrix> bindings{{"x", x}};
  for (int iter = 0; iter < 3; ++iter) {
    auto lowered = Lower(p, bindings, lowering);
    ASSERT_TRUE(lowered.ok()) << iter << ": " << lowered.status();
    const TiledMatrix& out = lowered->outputs.at("x");
    EXPECT_NE(out.name, bindings.at("x").name) << "iteration " << iter;
    std::set<std::string> resident{bindings.at("x").name};
    EXPECT_TRUE(
        VerifyPlan(lowered->plan, ExternalOptions(std::move(resident))).ok());
    bindings.insert_or_assign("x", out);
  }
}

TEST(VerifyPipelineTest, OptimizerOutputVerifies) {
  Program p;
  auto a = Expr::Input("A", 32, 8);
  auto b = Expr::Input("B", 8, 32);
  auto c = Expr::Input("C", 32, 32);
  p.Assign("R", Scale((a * b) + c, 0.5));
  const Program optimized = OptimizeProgram(p);
  EXPECT_TRUE(VerifyProgram(optimized).ok());
}

TEST(VerifyPipelineTest, StatusEntryPointBumpsMetrics) {
  MetricsRegistry metrics;
  const PhysicalPlan good = MakeChainPlan();
  EXPECT_TRUE(VerifyPlanStatus(good, {}, &metrics).ok());
  EXPECT_EQ(metrics.counter("verify.runs")->Value(), 1);
  EXPECT_EQ(metrics.counter("verify.failures")->Value(), 0);

  PhysicalPlan bad = MakeChainPlan();
  std::swap(bad.jobs[0], bad.jobs[1]);
  const Status status = VerifyPlanStatus(bad, {}, &metrics);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message().rfind("[verify.plan.dependency] ", 0), 0u)
      << status.message();
  EXPECT_EQ(metrics.counter("verify.runs")->Value(), 2);
  EXPECT_EQ(metrics.counter("verify.failures")->Value(), 1);
  EXPECT_GE(metrics.counter("verify.issues")->Value(), 1);
}

TEST(VerifyPipelineTest, ManagerRejectsCorruptedPlanPreAdmission) {
  SimDfs dfs{[] {
    DfsOptions options;
    options.num_nodes = 2;
    return options;
  }()};
  DfsTileStore store(&dfs);
  TileOpCostModel cost;
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  SimEngine engine(cluster, SimEngineOptions{});
  MetricsRegistry metrics;
  WorkloadManagerOptions options;
  options.virtual_time = true;
  options.executor.real_mode = false;
  options.metrics = &metrics;
  WorkloadManager manager(&store, &engine, &cost, options);

  Submission submission;
  submission.name = "corrupt";
  submission.plan = MakeChainPlan();
  std::swap(submission.plan.jobs[0], submission.plan.jobs[1]);
  auto id = manager.Submit(std::move(submission));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(id.status().message().rfind("[verify.plan.dependency] ", 0), 0u)
      << id.status().message();
  EXPECT_EQ(metrics.counter("sched.rejected")->Value(), 1);
  EXPECT_EQ(metrics.counter("sched.rejected.verify")->Value(), 1);
}

TEST(VerifyPipelineTest, ManagerAdmitsHandBuiltPlanWithoutDeterminism) {
  // Hand-assembled plans carry no determinism stamp; the admission edge
  // must not demand one.
  SimDfs dfs{[] {
    DfsOptions options;
    options.num_nodes = 2;
    return options;
  }()};
  DfsTileStore store(&dfs);
  for (const char* name : {"A", "B"}) {
    TiledMatrix m = Square(name, 32);
    for (int64_t r = 0; r < m.layout.grid_rows(); ++r) {
      for (int64_t c = 0; c < m.layout.grid_cols(); ++c) {
        CUMULON_CHECK(
            store.PutMeta(m.name, TileId{r, c}, 16 + kTile * kTile * 8, -1)
                .ok());
      }
    }
  }
  TileOpCostModel cost;
  ClusterConfig cluster{MachineProfile{}, 2, 2};
  SimEngine engine(cluster, SimEngineOptions{});
  WorkloadManagerOptions options;
  options.virtual_time = true;
  options.executor.real_mode = false;
  WorkloadManager manager(&store, &engine, &cost, options);

  Submission submission;
  submission.name = "sound";
  submission.plan = MakeChainPlan();
  auto id = manager.Submit(std::move(submission));
  ASSERT_TRUE(id.ok()) << id.status();
  manager.Start();
  const PlanOutcome outcome = manager.Wait(*id);
  EXPECT_EQ(outcome.state, PlanState::kDone) << outcome.status;
  manager.Drain();
}

TEST(VerifyPassRegistryTest, SuiteEnumeratesAllPasses) {
  EXPECT_GE(LogicalPasses().size(), 2u);
  EXPECT_GE(PlanPasses().size(), 5u);
  for (const auto& pass : LogicalPasses()) {
    EXPECT_NE(pass.name, nullptr);
    EXPECT_NE(std::string(pass.reason).find("verify."), std::string::npos);
  }
  for (const auto& pass : PlanPasses()) {
    EXPECT_NE(pass.name, nullptr);
    EXPECT_NE(std::string(pass.reason).find("verify."), std::string::npos);
  }
}

}  // namespace
}  // namespace cumulon
