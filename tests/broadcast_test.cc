#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "lang/lowering.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

TEST(BroadcastKernelTest, RowVectorAppliesPerColumn) {
  Tile a(3, 4), vec(1, 4), out(3, 4);
  FillTile(&a, 10.0);
  for (int64_t c = 0; c < 4; ++c) vec.Set(0, c, c);
  ASSERT_TRUE(EwBroadcast(BinaryOp::kAdd, a, vec, true, false, &out).ok());
  EXPECT_DOUBLE_EQ(out.At(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.At(2, 3), 13.0);
}

TEST(BroadcastKernelTest, ColVectorAppliesPerRow) {
  Tile a(3, 4), vec(3, 1), out(3, 4);
  FillTile(&a, 10.0);
  for (int64_t r = 0; r < 3; ++r) vec.Set(r, 0, r + 1.0);
  ASSERT_TRUE(EwBroadcast(BinaryOp::kMul, a, vec, false, false, &out).ok());
  EXPECT_DOUBLE_EQ(out.At(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.At(2, 1), 30.0);
}

TEST(BroadcastKernelTest, SwappedReversesOperands) {
  Tile a(2, 2), vec(1, 2), out(2, 2);
  FillTile(&a, 3.0);
  FillTile(&vec, 10.0);
  ASSERT_TRUE(EwBroadcast(BinaryOp::kSub, a, vec, true, true, &out).ok());
  EXPECT_DOUBLE_EQ(out.At(1, 1), 7.0);  // vec - a
}

TEST(BroadcastKernelTest, RejectsWrongVectorShape) {
  Tile a(3, 4), bad(1, 3), out(3, 4);
  EXPECT_FALSE(EwBroadcast(BinaryOp::kAdd, a, bad, true, false, &out).ok());
  Tile bad2(4, 1);
  EXPECT_FALSE(EwBroadcast(BinaryOp::kAdd, a, bad2, false, false, &out).ok());
}

TEST(BroadcastKernelTest, AllowsAliasedOutput) {
  Tile a(2, 3), vec(1, 3);
  FillTile(&a, 5.0);
  FillTile(&vec, 2.0);
  ASSERT_TRUE(EwBroadcast(BinaryOp::kDiv, a, vec, true, false, &a).ok());
  EXPECT_DOUBLE_EQ(a.At(1, 2), 2.5);
}

// ---------------------------------------------------------------------------
// Job level: broadcast epilogues / chains
// ---------------------------------------------------------------------------

class BroadcastJobTest : public ::testing::Test {
 protected:
  BroadcastJobTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  Rng rng_{81};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
};

TEST_F(BroadcastJobTest, EwChainWithRowVectorOperand) {
  const int64_t rows = 24, cols = 16, tile = 8;
  TiledMatrix x{"X", TileLayout::Square(rows, cols, tile)};
  TiledMatrix mu{"mu", TileLayout(1, cols, 1, tile)};
  TiledMatrix out{"Y", TileLayout::Square(rows, cols, tile)};
  DenseMatrix dx = DenseMatrix::Gaussian(rows, cols, &rng_);
  DenseMatrix dmu = DenseMatrix::Gaussian(1, cols, &rng_);
  ASSERT_TRUE(StoreDense(dx, x, &store_).ok());
  ASSERT_TRUE(StoreDense(dmu, mu, &store_).ok());

  PhysicalPlan plan;
  ASSERT_TRUE(AddEwChain(x, out,
                         {EwStep::Binary(BinaryOp::kSub, "mu", false,
                                         EwStep::Operand::kRowVector)},
                         &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());

  auto loaded = LoadDense(out, &store_);
  ASSERT_TRUE(loaded.ok());
  auto expected = dx.Broadcast(BinaryOp::kSub, dmu, true);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

TEST_F(BroadcastJobTest, MatMulEpilogueWithColVectorOperand) {
  const int64_t tile = 8;
  TiledMatrix a{"A", TileLayout::Square(16, 24, tile)};
  TiledMatrix b{"B", TileLayout::Square(24, 16, tile)};
  TiledMatrix scale{"s", TileLayout(16, 1, tile, 1)};
  TiledMatrix c{"C", TileLayout::Square(16, 16, tile)};
  DenseMatrix da = DenseMatrix::Gaussian(16, 24, &rng_);
  DenseMatrix db = DenseMatrix::Gaussian(24, 16, &rng_);
  DenseMatrix ds = DenseMatrix::Uniform(16, 1, &rng_, 0.5, 2.0);
  ASSERT_TRUE(StoreDense(da, a, &store_).ok());
  ASSERT_TRUE(StoreDense(db, b, &store_).ok());
  ASSERT_TRUE(StoreDense(ds, scale, &store_).ok());

  PhysicalPlan plan;
  ASSERT_TRUE(AddMatMul(a, b, c, MatMulParams{},
                        {EwStep::Binary(BinaryOp::kMul, "s", false,
                                        EwStep::Operand::kColVector)},
                        &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());

  auto loaded = LoadDense(c, &store_);
  ASSERT_TRUE(loaded.ok());
  auto expected = da.Multiply(db)->Broadcast(BinaryOp::kMul, ds, false);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

TEST_F(BroadcastJobTest, BroadcastOperandCostIsVectorSized) {
  TiledMatrix x{"X", TileLayout::Square(64, 64, 16)};
  TiledMatrix out{"Y", TileLayout::Square(64, 64, 16)};
  EwChainJob full("full", x, out,
                  {EwStep::Binary(BinaryOp::kSub, "m")}, 1);
  EwChainJob broadcast("bcast", x, out,
                       {EwStep::Binary(BinaryOp::kSub, "mu", false,
                                       EwStep::Operand::kRowVector)},
                       1);
  BuildContext ctx{nullptr, &cost_, false, false};
  auto built_full = full.Build(ctx);
  auto built_bcast = broadcast.Build(ctx);
  ASSERT_TRUE(built_full.ok() && built_bcast.ok());
  int64_t full_read = 0, bcast_read = 0;
  for (const Task& t : built_full->spec.tasks) full_read += t.cost.bytes_read;
  for (const Task& t : built_bcast->spec.tasks) {
    bcast_read += t.cost.bytes_read;
  }
  EXPECT_LT(bcast_read, full_read);
}

// ---------------------------------------------------------------------------
// Language level: centering pipeline
// ---------------------------------------------------------------------------

TEST(BroadcastLangTest, ShapeInferenceAcceptsVectors) {
  auto x = Expr::Input("X", 10, 4);
  auto mu = Expr::Input("mu", 1, 4);
  auto centered = Expr::EwBinary(BinaryOp::kSub, x, mu);
  ASSERT_TRUE(centered.ok());
  EXPECT_EQ((*centered)->rows(), 10);
  EXPECT_EQ((*centered)->cols(), 4);
  auto v = Expr::Input("v", 10, 1);
  auto scaled = Expr::EwBinary(BinaryOp::kMul, v, x);  // vector on the left
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ((*scaled)->rows(), 10);
  EXPECT_EQ((*scaled)->cols(), 4);
  EXPECT_FALSE(Expr::EwBinary(BinaryOp::kAdd, x,
                              Expr::Input("w", 2, 4)).ok());
}

TEST(BroadcastLangTest, EndToEndColumnCentering) {
  InMemoryTileStore store;
  Rng rng(82);
  const int64_t rows = 32, cols = 16, tile = 8;
  TiledMatrix x{"X", TileLayout::Square(rows, cols, tile)};
  DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng);
  ASSERT_TRUE(StoreDense(dense, x, &store).ok());

  // mu = col_sums(X)/rows; Xc = X - mu (broadcast).
  Program p;
  auto ex = Expr::Input("X", rows, cols);
  p.Assign("mu", Scale(Expr::ColSums(ex), 1.0 / rows));
  p.Assign("Xc", ex - Expr::Input("mu", 1, cols));
  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(p, {{"X", x}}, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  auto xc = LoadDense(lowered->outputs.at("Xc"), &store);
  ASSERT_TRUE(xc.ok());
  DenseMatrix mu = dense.ColSums().Unary(UnaryOp::kScale, 1.0 / rows);
  auto expected = dense.Broadcast(BinaryOp::kSub, mu, true);
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(*xc);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
  // Column means of the centered matrix vanish.
  DenseMatrix centered_mu = xc->ColSums();
  for (int64_t c = 0; c < cols; ++c) {
    EXPECT_NEAR(centered_mu.At(0, c), 0.0, 1e-9);
  }
}

TEST(BroadcastLangTest, CseSharesRepeatedSubexpressions) {
  // T(W) appears twice; with CSE it lowers to one transpose job.
  auto count_transposes = [](bool cse) {
    Program p;
    auto w = Expr::Input("W", 16, 8);
    auto v = Expr::Input("V", 16, 16);
    p.Assign("N", T(w) * v);
    p.Assign("D", T(w) * w);
    std::map<std::string, TiledMatrix> bindings = {
        {"W", {"W", TileLayout::Square(16, 8, 8)}},
        {"V", {"V", TileLayout::Square(16, 16, 8)}},
    };
    LoweringOptions lowering;
    lowering.tile_dim = 8;
    lowering.enable_cse = cse;
    auto lowered = Lower(p, bindings, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    int transposes = 0;
    for (const auto& job : lowered->plan.jobs) {
      if (job->DebugString().find("Transpose") != std::string::npos) {
        ++transposes;
      }
    }
    return transposes;
  };
  EXPECT_EQ(count_transposes(true), 1);
  EXPECT_EQ(count_transposes(false), 2);
}

}  // namespace
}  // namespace cumulon
