#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/report.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"
#include "opt/search.h"

namespace cumulon {
namespace {

/// Shared harness: bind inputs, lower, execute for real, load outputs.
class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  void Bind(const std::string& name, DenseMatrix dense) {
    TiledMatrix m{name, TileLayout::Square(dense.rows(), dense.cols(),
                                           tile_dim_)};
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    bindings_.insert_or_assign(name, m);
  }

  DenseMatrix RunAndLoad(const Program& program, const std::string& target) {
    LoweringOptions lowering;
    lowering.tile_dim = tile_dim_;
    auto lowered = Lower(OptimizeProgram(program), bindings_, lowering);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    auto stats = executor_.Run(lowered->plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    last_stats_ = std::move(stats).value();
    auto loaded = LoadDense(lowered->outputs.at(target), &store_);
    CUMULON_CHECK(loaded.ok()) << loaded.status();
    return std::move(loaded).value();
  }

  int64_t tile_dim_ = 8;
  Rng rng_{111};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
  std::map<std::string, TiledMatrix> bindings_;
  PlanStats last_stats_;
};

TEST_F(WorkloadTest, PageRankIterationMatchesReference) {
  PageRankSpec spec;
  spec.n = 24;
  spec.damping = 0.85;
  // Column-stochastic random link matrix.
  DenseMatrix m(spec.n, spec.n);
  for (int64_t c = 0; c < spec.n; ++c) {
    double column_sum = 0.0;
    for (int64_t r = 0; r < spec.n; ++r) {
      const double v = rng_.NextDouble();
      m.Set(r, c, v);
      column_sum += v;
    }
    for (int64_t r = 0; r < spec.n; ++r) m.Set(r, c, m.At(r, c) / column_sum);
  }
  DenseMatrix p0 = DenseMatrix::Constant(spec.n, 1, 1.0 / spec.n);
  Bind("M", m);
  Bind("p", p0);

  DenseMatrix p1 = RunAndLoad(BuildPageRankIteration(spec), "p");

  auto mp = m.Multiply(p0);
  ASSERT_TRUE(mp.ok());
  DenseMatrix expected = mp->Unary(UnaryOp::kScale, spec.damping)
                             .Unary(UnaryOp::kAddScalar,
                                    (1.0 - spec.damping) / spec.n);
  auto diff = expected.MaxAbsDiff(p1);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
  // PageRank invariant: mass is conserved (column-stochastic M).
  EXPECT_NEAR(p1.Total(), 1.0, 1e-9);
}

TEST_F(WorkloadTest, PageRankFusesIntoOneJob) {
  PageRankSpec spec;
  spec.n = 16;
  Bind("M", DenseMatrix::Uniform(spec.n, spec.n, &rng_));
  Bind("p", DenseMatrix::Constant(spec.n, 1, 1.0 / spec.n));
  RunAndLoad(BuildPageRankIteration(spec), "p");
  // Multiply + fused scale + fused teleport term: a single job.
  EXPECT_EQ(last_stats_.jobs.size(), 1u);
}

TEST_F(WorkloadTest, LogRegStepMatchesReference) {
  LogRegSpec spec;
  spec.samples = 32;
  spec.features = 8;
  spec.alpha = 0.05;
  DenseMatrix x = DenseMatrix::Gaussian(spec.samples, spec.features, &rng_);
  DenseMatrix w0 = DenseMatrix::Gaussian(spec.features, 1, &rng_);
  DenseMatrix y(spec.samples, 1);
  for (int64_t r = 0; r < spec.samples; ++r) {
    y.Set(r, 0, rng_.NextDouble() < 0.5 ? 0.0 : 1.0);
  }
  Bind("X", x);
  Bind("w", w0);
  Bind("y", y);

  DenseMatrix w1 = RunAndLoad(BuildLogRegStep(spec), "w");

  auto xw = x.Multiply(w0);
  ASSERT_TRUE(xw.ok());
  DenseMatrix predictions = xw->Unary(UnaryOp::kSigmoid);
  auto residual = y.Binary(BinaryOp::kSub, predictions);
  ASSERT_TRUE(residual.ok());
  auto gradient = x.Transpose().Multiply(*residual);
  ASSERT_TRUE(gradient.ok());
  auto expected =
      w0.Binary(BinaryOp::kAdd, gradient->Unary(UnaryOp::kScale, spec.alpha));
  ASSERT_TRUE(expected.ok());
  auto diff = expected->MaxAbsDiff(w1);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-9);
}

TEST_F(WorkloadTest, LogRegGradientStepImprovesLogLikelihood) {
  LogRegSpec spec;
  spec.samples = 64;
  spec.features = 4;
  spec.alpha = 0.1;
  // Separable-ish data from a planted weight vector.
  DenseMatrix w_true = DenseMatrix::Gaussian(spec.features, 1, &rng_);
  DenseMatrix x = DenseMatrix::Gaussian(spec.samples, spec.features, &rng_);
  DenseMatrix y(spec.samples, 1);
  auto scores = x.Multiply(w_true);
  ASSERT_TRUE(scores.ok());
  for (int64_t r = 0; r < spec.samples; ++r) {
    y.Set(r, 0, scores->At(r, 0) > 0 ? 1.0 : 0.0);
  }
  Bind("X", x);
  Bind("w", DenseMatrix::Constant(spec.features, 1, 0.0));
  Bind("y", y);

  auto log_likelihood = [&](const DenseMatrix& w) {
    auto s = x.Multiply(w);
    CUMULON_CHECK(s.ok());
    double ll = 0.0;
    for (int64_t r = 0; r < spec.samples; ++r) {
      const double p = 1.0 / (1.0 + std::exp(-s->At(r, 0)));
      ll += y.At(r, 0) > 0.5 ? std::log(p + 1e-12)
                             : std::log(1.0 - p + 1e-12);
    }
    return ll;
  };

  const double before = log_likelihood(DenseMatrix::Constant(spec.features,
                                                             1, 0.0));
  DenseMatrix w1 = RunAndLoad(BuildLogRegStep(spec), "w");
  EXPECT_GT(log_likelihood(w1), before);
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

TEST_F(WorkloadTest, FormatPlanStatsListsJobsAndTotals) {
  PageRankSpec spec;
  spec.n = 16;
  Bind("M", DenseMatrix::Uniform(spec.n, spec.n, &rng_));
  Bind("p", DenseMatrix::Constant(spec.n, 1, 1.0 / spec.n));
  RunAndLoad(BuildPageRankIteration(spec), "p");
  const std::string report = FormatPlanStats(last_stats_);
  EXPECT_NE(report.find("job"), std::string::npos);
  EXPECT_NE(report.find("total:"), std::string::npos);
  EXPECT_NE(report.find("mm_"), std::string::npos);
}

TEST_F(WorkloadTest, PlanStatsCsvHasOneRowPerTask) {
  PageRankSpec spec;
  spec.n = 16;
  Bind("M", DenseMatrix::Uniform(spec.n, spec.n, &rng_));
  Bind("p", DenseMatrix::Constant(spec.n, 1, 1.0 / spec.n));
  RunAndLoad(BuildPageRankIteration(spec), "p");
  const std::string csv = PlanStatsCsv(last_stats_);
  int lines = 0;
  for (char ch : csv) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, last_stats_.total_tasks + 1);  // + header
}

// ---------------------------------------------------------------------------
// Tuner-driven search
// ---------------------------------------------------------------------------

TEST(TunerSearchTest, TunedSearchNeverWorsePerConfig) {
  RsvdSpec rsvd;
  rsvd.m = 16384;
  rsvd.n = 8192;
  rsvd.l = 64;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildRsvd1(rsvd));
  spec.inputs = {
      {"A", TileLayout::Square(rsvd.m, rsvd.n, 2048)},
      {"Omega", TileLayout::Square(rsvd.n, rsvd.l, 2048)},
  };
  SearchSpace space;
  space.machine_types = {"m1.large"};
  space.cluster_sizes = {4, 16};
  space.slots_per_machine = {2};
  space.mm_candidates = {MatMulParams{1, 1, 0}};  // weak fixed portfolio
  PredictorOptions options;
  options.lowering.tile_dim = 2048;

  auto good_fixed = EnumeratePlans(spec, space, options);
  ASSERT_TRUE(good_fixed.ok());
  space.mm_candidates = {MatMulParams{8, 8, 0}};  // badly coarse splits
  auto bad_fixed = EnumeratePlans(spec, space, options);
  ASSERT_TRUE(bad_fixed.ok());
  space.use_job_tuner = true;
  auto tuned = EnumeratePlans(spec, space, options);
  ASSERT_TRUE(tuned.ok());
  ASSERT_EQ(good_fixed->size(), tuned->size());
  ASSERT_EQ(bad_fixed->size(), tuned->size());

  auto seconds_for = [](const std::vector<PlanPoint>& points, int machines) {
    for (const PlanPoint& p : points) {
      if (p.cluster.num_machines == machines) return p.seconds;
    }
    return -1.0;
  };
  for (int machines : {4, 16}) {
    const double tuned_s = seconds_for(*tuned, machines);
    ASSERT_GT(tuned_s, 0.0);
    // Tuning must clearly beat a bad fixed choice...
    EXPECT_LT(tuned_s, seconds_for(*bad_fixed, machines));
    // ...and stay close to a good one (the tuner costs each job in
    // isolation, so a small model-mismatch gap vs the full-pipeline
    // prediction is expected).
    EXPECT_LT(tuned_s, seconds_for(*good_fixed, machines) * 1.10);
  }
}

}  // namespace
}  // namespace cumulon
