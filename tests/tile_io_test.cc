#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/tile_io.h"
#include "matrix/tile_ops.h"

namespace cumulon {
namespace {

TEST(TileIoTest, RoundTripPreservesEverything) {
  Rng rng(51);
  Tile tile(13, 7);
  FillGaussian(&tile, &rng);
  auto bytes = SerializeTile(tile);
  auto back = DeserializeTile(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->rows(), 13);
  EXPECT_EQ(back->cols(), 7);
  auto diff = MaxAbsDiff(tile, *back);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff.value(), 0.0);
}

TEST(TileIoTest, SerializedSizeMatchesSizeBytesPlusChecksum) {
  Tile tile(10, 20);
  auto bytes = SerializeTile(tile);
  EXPECT_EQ(static_cast<int64_t>(bytes.size()),
            tile.SizeBytes() + static_cast<int64_t>(sizeof(uint64_t)));
}

TEST(TileIoTest, DetectsPayloadCorruption) {
  Rng rng(52);
  Tile tile(8, 8);
  FillGaussian(&tile, &rng);
  auto bytes = SerializeTile(tile);
  bytes[40] ^= 0xFF;  // flip a payload byte
  auto back = DeserializeTile(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInternal);
}

TEST(TileIoTest, DetectsHeaderCorruption) {
  Tile tile(4, 4);
  auto bytes = SerializeTile(tile);
  bytes[0] ^= 0x01;  // corrupt the row count
  EXPECT_FALSE(DeserializeTile(bytes).ok());
}

TEST(TileIoTest, DetectsTruncation) {
  Tile tile(4, 4);
  auto bytes = SerializeTile(tile);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DeserializeTile(bytes).ok());
  EXPECT_FALSE(DeserializeTile({}).ok());
  EXPECT_FALSE(DeserializeTile({1, 2, 3}).ok());
}

TEST(TileIoTest, RejectsNonPositiveDimensions) {
  Tile tile(1, 1);
  auto bytes = SerializeTile(tile);
  // Zero out the rows field and re-stamp the checksum so only the
  // dimension check can fire.
  for (size_t i = 0; i < sizeof(int64_t); ++i) bytes[i] = 0;
  const uint64_t checksum =
      Fnv1a(bytes.data(), bytes.size() - sizeof(uint64_t));
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint64_t), &checksum,
              sizeof(checksum));
  auto back = DeserializeTile(bytes);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(TileIoTest, Fnv1aKnownVector) {
  // FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c.
  const uint8_t a = 'a';
  EXPECT_EQ(Fnv1a(&a, 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a(nullptr, 0), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace cumulon
