// Golden structural test of the execution trace for a fixed plan: predict
// RSVD-1 in simulation mode with a tracer attached and check the trace's
// shape against the plan's own stats — span counts, job/task nesting,
// per-lane exclusivity, and the total-span-equals-predicted-time contract
// the --trace CLI flag advertises.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/revocation.h"
#include "lang/logical_optimizer.h"
#include "lang/programs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/predictor.h"

namespace cumulon {
namespace {

constexpr int64_t kTile = 256;

ProgramSpec SmallRsvd() {
  RsvdSpec s;
  s.m = 2048;
  s.n = 512;
  s.l = 64;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildRsvd1(s));
  spec.inputs = {{"A", TileLayout::Square(s.m, s.n, kTile)},
                 {"Omega", TileLayout::Square(s.n, s.l, kTile)}};
  return spec;
}

ClusterConfig SmallCluster() {
  return ClusterConfig{MachineProfile{}, 4, 2};
}

Result<PredictionResult> PredictTraced(Tracer* tracer,
                                       MetricsRegistry* metrics,
                                       bool tune_mm = false) {
  PredictorOptions options;
  options.lowering.tile_dim = kTile;
  options.tune_mm_per_job = tune_mm;
  options.tracer = tracer;
  options.metrics = metrics;
  return PredictProgram(SmallRsvd(), SmallCluster(), options);
}

std::vector<TraceSpan> SpansOf(const Tracer& tracer,
                               const std::string& category) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : tracer.spans()) {
    if (s.category == category) out.push_back(s);
  }
  return out;
}

TEST(TracePlanTest, SpanCountsMatchPlanStats) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  auto prediction = PredictTraced(&tracer, nullptr);
  ASSERT_TRUE(prediction.ok()) << prediction.status();
  const PlanStats& stats = prediction->stats;

  EXPECT_EQ(SpansOf(tracer, "task").size(),
            static_cast<size_t>(stats.total_tasks));
  EXPECT_EQ(SpansOf(tracer, "job").size(), stats.jobs.size());
  // Sim mode also records one startup span per job on the driver lane.
  EXPECT_EQ(SpansOf(tracer, "startup").size(), stats.jobs.size());
}

TEST(TracePlanTest, JobSpansNestTheirTaskSpans) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  auto prediction = PredictTraced(&tracer, nullptr);
  ASSERT_TRUE(prediction.ok()) << prediction.status();

  std::map<int64_t, TraceSpan> jobs;
  for (const TraceSpan& j : SpansOf(tracer, "job")) jobs[j.id] = j;
  const std::vector<TraceSpan> tasks = SpansOf(tracer, "task");
  ASSERT_FALSE(tasks.empty());

  constexpr double kEps = 1e-9;
  for (const TraceSpan& t : tasks) {
    ASSERT_NE(jobs.find(t.parent_id), jobs.end())
        << "task '" << t.name << "' is not parented to a job span";
    const TraceSpan& j = jobs.at(t.parent_id);
    EXPECT_GE(t.start_seconds, j.start_seconds - kEps) << t.name;
    EXPECT_LE(t.end_seconds(), j.end_seconds() + kEps) << t.name;
  }
  for (const auto& [id, j] : jobs) {
    EXPECT_EQ(j.parent_id, 0) << "job spans must be top level";
  }
}

TEST(TracePlanTest, NoTwoSpansOverlapOnOneLane) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  auto prediction = PredictTraced(&tracer, nullptr);
  ASSERT_TRUE(prediction.ok()) << prediction.status();

  // Group task spans by (machine, slot) lane; within a lane, sorted by
  // start, each span must end before the next begins.
  std::map<std::pair<int, int>, std::vector<TraceSpan>> lanes;
  for (const TraceSpan& t : SpansOf(tracer, "task")) {
    lanes[{t.machine, t.slot}].push_back(t);
  }
  ASSERT_FALSE(lanes.empty());
  constexpr double kEps = 1e-9;
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.start_seconds < b.start_seconds;
              });
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].end_seconds(), spans[i].start_seconds + kEps)
          << "lane (" << lane.first << "," << lane.second
          << "): span '" << spans[i - 1].name << "' overlaps '"
          << spans[i].name << "'";
    }
  }
}

TEST(TracePlanTest, TotalSpanMatchesPredictedTime) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  auto prediction = PredictTraced(&tracer, nullptr);
  ASSERT_TRUE(prediction.ok()) << prediction.status();

  double max_end = 0.0;
  for (const TraceSpan& s : tracer.spans()) {
    max_end = std::max(max_end, s.end_seconds());
  }
  const double predicted = prediction->stats.total_seconds;
  ASSERT_GT(predicted, 0.0);
  EXPECT_NEAR(max_end, predicted, 0.01 * predicted)
      << "trace timeline diverges from the predicted plan time";
  EXPECT_DOUBLE_EQ(tracer.time_offset(), predicted);
}

TEST(TracePlanTest, TunerProbeSimulationsDoNotPolluteTheTrace) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  auto prediction = PredictTraced(&tracer, nullptr, /*tune_mm=*/true);
  ASSERT_TRUE(prediction.ok()) << prediction.status();
  // Probe runs execute whole candidate jobs; if they leaked into the
  // trace, the task-span count would exceed the plan's task count.
  EXPECT_EQ(SpansOf(tracer, "task").size(),
            static_cast<size_t>(prediction->stats.total_tasks));
  EXPECT_EQ(SpansOf(tracer, "job").size(), prediction->stats.jobs.size());
}

TEST(TracePlanTest, MetricsAgreeWithPlanStats) {
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  MetricsRegistry metrics;
  auto prediction = PredictTraced(&tracer, &metrics);
  ASSERT_TRUE(prediction.ok()) << prediction.status();
  const PlanStats& stats = prediction->stats;

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("engine.tasks"), stats.total_tasks);
  EXPECT_EQ(snapshot.counters.at("exec.tasks"), stats.total_tasks);
  EXPECT_EQ(snapshot.counters.at("engine.jobs"),
            static_cast<int64_t>(stats.jobs.size()));
  EXPECT_EQ(snapshot.counters.at("exec.tasks.nonlocal"),
            stats.non_local_tasks);
  EXPECT_EQ(snapshot.counters.at("exec.bytes.read"), stats.bytes_read);
  EXPECT_EQ(snapshot.counters.at("exec.bytes.written"), stats.bytes_written);
  // PlanStats carries the same delta.
  EXPECT_EQ(stats.metrics.CounterOr("exec.tasks", -1), stats.total_tasks);
}

// ---------------------------------------------------------------------------
// Golden two-revocation run: a scripted fault plan kills machines 1 and 3
// mid-prediction; the trace must carry exactly two zero-width "revoke"
// markers, correctly parented and placed, and the cluster.revoked.*
// counters must agree with the plan's rescheduling stats.
// ---------------------------------------------------------------------------

TEST(TracePlanTest, TwoScriptedRevocationsLeaveGoldenTrace) {
  // Clean reference run fixes the fault instants: 30% into the first job
  // (machine 1) and 70% into the total busy time (machine 3) — both
  // machines are mid-task at their instant on a 4x2 cluster.
  Tracer clean_tracer(Tracer::ClockDomain::kVirtual);
  auto clean = PredictTraced(&clean_tracer, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_FALSE(clean->stats.jobs.empty());
  double busy = 0.0;
  for (const JobRecord& j : clean->stats.jobs) busy += j.stats.duration_seconds;
  const double t1 = 0.3 * clean->stats.jobs[0].stats.duration_seconds;
  const double t2 = 0.7 * busy;
  ASSERT_LT(t1, t2);

  RevocationController ctrl(
      RevocationSchedule::Scripted({{1, t1}, {3, t2}}));
  Tracer tracer(Tracer::ClockDomain::kVirtual);
  MetricsRegistry metrics;
  PredictorOptions options;
  options.lowering.tile_dim = kTile;
  options.tracer = &tracer;
  options.metrics = &metrics;
  options.sim.revocation = &ctrl;
  auto faulted = PredictProgram(SmallRsvd(), SmallCluster(), options);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  const PlanStats& stats = faulted->stats;

  // Both losses observed, exactly once each.
  EXPECT_EQ(ctrl.fired_count(), 2);
  EXPECT_EQ(stats.revoked_machines, 2);
  EXPECT_GE(stats.rescheduled_tasks, 1);
  EXPECT_GT(stats.revoked_wasted_seconds, 0.0);
  // Losing two of four machines mid-run must cost wall time.
  EXPECT_GT(faulted->seconds, clean->seconds);

  // Exactly two zero-width revoke markers, one per machine, each parented
  // to a real job span and sitting on the dead machine's lane.
  const std::vector<TraceSpan> revokes = SpansOf(tracer, "revoke");
  ASSERT_EQ(revokes.size(), 2u);
  std::map<int64_t, TraceSpan> jobs;
  for (const TraceSpan& j : SpansOf(tracer, "job")) jobs[j.id] = j;
  std::map<int, TraceSpan> by_machine;
  for (const TraceSpan& r : revokes) {
    EXPECT_DOUBLE_EQ(r.duration_seconds, 0.0);
    ASSERT_NE(jobs.find(r.parent_id), jobs.end())
        << "revoke marker '" << r.name << "' is not parented to a job span";
    ASSERT_FALSE(r.args.empty());
    EXPECT_EQ(r.args[0].first, "machine");
    EXPECT_EQ(static_cast<int>(r.args[0].second), r.machine);
    by_machine[r.machine] = r;
  }
  ASSERT_NE(by_machine.find(1), by_machine.end());
  ASSERT_NE(by_machine.find(3), by_machine.end());

  // The per-marker rescheduled counts sum to the plan's total.
  double marker_rescheduled = 0.0;
  for (const TraceSpan& r : revokes) {
    for (const auto& [key, value] : r.args) {
      if (key == "tasks_rescheduled") marker_rescheduled += value;
    }
  }
  EXPECT_EQ(static_cast<int>(marker_rescheduled), stats.rescheduled_tasks);

  // No task ever runs on a machine after its loss: on each dead machine's
  // lane set, every task span ends at or before the revoke marker.
  constexpr double kEps = 1e-9;
  for (const TraceSpan& t : SpansOf(tracer, "task")) {
    auto it = by_machine.find(t.machine);
    if (it == by_machine.end()) continue;
    EXPECT_LE(t.end_seconds(), it->second.start_seconds + kEps)
        << "task '" << t.name << "' outlived revoked machine " << t.machine;
  }

  // Counter deltas mirror the stats.
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counters.at("cluster.revoked.machines"), 2);
  EXPECT_EQ(snapshot.counters.at("cluster.revoked.tasks"),
            stats.rescheduled_tasks);
  ASSERT_NE(snapshot.histograms.find("cluster.revoked.wasted_seconds"),
            snapshot.histograms.end());
  EXPECT_EQ(snapshot.histograms.at("cluster.revoked.wasted_seconds").count,
            stats.rescheduled_tasks);
}

TEST(TracePlanTest, RevocationTraceIsDeterministicAcrossRuns) {
  auto run = [](Tracer* tracer) {
    RevocationController ctrl(
        RevocationSchedule::Scripted({{1, 5.0}, {3, 40.0}}));
    PredictorOptions options;
    options.lowering.tile_dim = kTile;
    options.tracer = tracer;
    options.sim.revocation = &ctrl;
    ASSERT_TRUE(PredictProgram(SmallRsvd(), SmallCluster(), options).ok());
  };
  Tracer first(Tracer::ClockDomain::kVirtual);
  Tracer second(Tracer::ClockDomain::kVirtual);
  run(&first);
  run(&second);
  EXPECT_EQ(first.ToChromeJson(), second.ToChromeJson());
}

TEST(TracePlanTest, TraceIsDeterministicAcrossRuns) {
  Tracer first(Tracer::ClockDomain::kVirtual);
  Tracer second(Tracer::ClockDomain::kVirtual);
  ASSERT_TRUE(PredictTraced(&first, nullptr).ok());
  ASSERT_TRUE(PredictTraced(&second, nullptr).ok());
  EXPECT_EQ(first.ToChromeJson(), second.ToChromeJson());
}

}  // namespace
}  // namespace cumulon
