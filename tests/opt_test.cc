#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lang/logical_optimizer.h"
#include "lang/programs.h"
#include "opt/predictor.h"
#include "opt/search.h"

namespace cumulon {
namespace {

/// A mid-sized RSVD-1 instance: big enough that cluster size matters,
/// small enough to predict quickly.
ProgramSpec TestSpec(int64_t tile_dim = 1024) {
  RsvdSpec rsvd;
  rsvd.m = 16384;
  rsvd.n = 8192;
  rsvd.l = 64;
  ProgramSpec spec;
  spec.program = OptimizeProgram(BuildRsvd1(rsvd));
  spec.inputs = {
      {"A", TileLayout::Square(rsvd.m, rsvd.n, tile_dim)},
      {"Omega", TileLayout::Square(rsvd.n, rsvd.l, tile_dim)},
  };
  return spec;
}

PredictorOptions TestOptions() {
  PredictorOptions options;
  options.lowering.tile_dim = 1024;
  return options;
}

ClusterConfig SmallCluster() {
  auto machine = FindMachine("m1.large");
  CUMULON_CHECK(machine.ok());
  return ClusterConfig{machine.value(), 4, 2};
}

TEST(PredictorTest, ProducesPositiveTimeAndCost) {
  auto prediction = PredictProgram(TestSpec(), SmallCluster(), TestOptions());
  ASSERT_TRUE(prediction.ok()) << prediction.status();
  EXPECT_GT(prediction->seconds, 0.0);
  EXPECT_GT(prediction->dollars, 0.0);
  EXPECT_FALSE(prediction->stats.jobs.empty());
}

TEST(PredictorTest, DeterministicForFixedSeed) {
  auto p1 = PredictProgram(TestSpec(), SmallCluster(), TestOptions());
  auto p2 = PredictProgram(TestSpec(), SmallCluster(), TestOptions());
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_DOUBLE_EQ(p1->seconds, p2->seconds);
  EXPECT_DOUBLE_EQ(p1->dollars, p2->dollars);
}

TEST(PredictorTest, MoreMachinesReduceTimeOnParallelWork) {
  auto machine = FindMachine("m1.large");
  ASSERT_TRUE(machine.ok());
  auto small = PredictProgram(TestSpec(),
                              ClusterConfig{machine.value(), 2, 2},
                              TestOptions());
  auto large = PredictProgram(TestSpec(),
                              ClusterConfig{machine.value(), 16, 2},
                              TestOptions());
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(large->seconds, small->seconds);
}

TEST(PredictorTest, HourlyBillingMakesCostStepwise) {
  PredictorOptions options = TestOptions();
  options.billing.quantum_seconds = 3600.0;
  auto prediction = PredictProgram(TestSpec(), SmallCluster(), options);
  ASSERT_TRUE(prediction.ok());
  const ClusterConfig cluster = SmallCluster();
  const double hours = std::ceil(prediction->seconds / 3600.0);
  EXPECT_DOUBLE_EQ(
      prediction->dollars,
      hours * cluster.machine.price_per_hour * cluster.num_machines);
}

TEST(PredictorTest, UnboundInputFails) {
  ProgramSpec spec = TestSpec();
  spec.inputs.clear();
  EXPECT_FALSE(PredictProgram(spec, SmallCluster(), TestOptions()).ok());
}

// ---------------------------------------------------------------------------
// Plan search
// ---------------------------------------------------------------------------

SearchSpace TinySpace() {
  SearchSpace space;
  space.machine_types = {"m1.large", "c1.medium"};
  space.cluster_sizes = {2, 8};
  space.slots_per_machine = {2};
  space.mm_candidates = {MatMulParams{1, 1, 0}, MatMulParams{2, 2, 0}};
  return space;
}

TEST(SearchTest, EnumeratesAllClusterConfigs) {
  auto points = EnumeratePlans(TestSpec(), TinySpace(), TestOptions());
  ASSERT_TRUE(points.ok()) << points.status();
  EXPECT_EQ(points->size(), 4u);  // 2 machines x 2 sizes x 1 slots
  // Sorted by time.
  for (size_t i = 1; i < points->size(); ++i) {
    EXPECT_LE((*points)[i - 1].seconds, (*points)[i].seconds);
  }
}

TEST(SearchTest, DefaultsCoverWholeCatalog) {
  SearchSpace space;
  space.cluster_sizes = {4};
  space.slots_per_machine = {2};
  space.mm_candidates = {MatMulParams{1, 1, 0}};
  auto points = EnumeratePlans(TestSpec(), space, TestOptions());
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), MachineCatalog().size());
}

TEST(SearchTest, ParetoFrontierIsUndominatedAndMonotone) {
  auto points = EnumeratePlans(TestSpec(), TinySpace(), TestOptions());
  ASSERT_TRUE(points.ok());
  auto frontier = ParetoFrontier(*points);
  ASSERT_FALSE(frontier.empty());
  // Monotone: time increases, cost strictly decreases along the frontier.
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].seconds, frontier[i - 1].seconds);
    EXPECT_LT(frontier[i].dollars, frontier[i - 1].dollars);
  }
  // No point dominates a frontier point.
  for (const PlanPoint& f : frontier) {
    for (const PlanPoint& p : *points) {
      EXPECT_FALSE(p.seconds < f.seconds && p.dollars < f.dollars)
          << p.ToString() << " dominates " << f.ToString();
    }
  }
}

TEST(SearchTest, MinCostUnderDeadlinePicksCheapestFeasible) {
  std::vector<PlanPoint> points(3);
  points[0].seconds = 100;
  points[0].dollars = 9;
  points[1].seconds = 200;
  points[1].dollars = 4;
  points[2].seconds = 400;
  points[2].dollars = 1;
  auto best = MinCostUnderDeadline(points, 250.0);
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best->dollars, 4.0);
  EXPECT_EQ(MinCostUnderDeadline(points, 50.0).status().code(),
            StatusCode::kNotFound);
}

TEST(SearchTest, MinTimeUnderBudgetPicksFastestAffordable) {
  std::vector<PlanPoint> points(3);
  points[0].seconds = 100;
  points[0].dollars = 9;
  points[1].seconds = 200;
  points[1].dollars = 4;
  points[2].seconds = 400;
  points[2].dollars = 1;
  auto best = MinTimeUnderBudget(points, 5.0);
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(best->seconds, 200.0);
  EXPECT_EQ(MinTimeUnderBudget(points, 0.5).status().code(),
            StatusCode::kNotFound);
}

TEST(SearchTest, TighterDeadlineNeverCheaper) {
  auto points = EnumeratePlans(TestSpec(), TinySpace(), TestOptions());
  ASSERT_TRUE(points.ok());
  // Feasible deadlines from the slowest plan downwards.
  const double slowest = points->back().seconds;
  auto loose = MinCostUnderDeadline(*points, slowest * 2);
  auto tight = MinCostUnderDeadline(*points, points->front().seconds * 1.01);
  ASSERT_TRUE(loose.ok() && tight.ok());
  EXPECT_GE(tight->dollars, loose->dollars);
}

TEST(SearchTest, PlanPointToStringMentionsClusterAndCost) {
  PlanPoint p;
  p.cluster = SmallCluster();
  p.seconds = 120.0;
  p.dollars = 1.5;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("m1.large"), std::string::npos);
  EXPECT_NE(s.find("$1.50"), std::string::npos);
}

}  // namespace
}  // namespace cumulon
