#include <map>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "lang/expr.h"
#include "lang/logical_optimizer.h"
#include "lang/lowering.h"
#include "lang/programs.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Expr construction
// ---------------------------------------------------------------------------

TEST(ExprTest, InputCarriesShape) {
  auto a = Expr::Input("A", 10, 20);
  EXPECT_EQ(a->kind(), ExprKind::kInput);
  EXPECT_EQ(a->rows(), 10);
  EXPECT_EQ(a->cols(), 20);
  EXPECT_EQ(a->input_name(), "A");
}

TEST(ExprTest, MatMulInfersShape) {
  auto a = Expr::Input("A", 10, 20);
  auto b = Expr::Input("B", 20, 5);
  auto p = Expr::MatMul(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->rows(), 10);
  EXPECT_EQ((*p)->cols(), 5);
}

TEST(ExprTest, MatMulRejectsMismatch) {
  auto a = Expr::Input("A", 10, 20);
  auto b = Expr::Input("B", 30, 5);
  EXPECT_FALSE(Expr::MatMul(a, b).ok());
  EXPECT_FALSE(Expr::MatMul(nullptr, b).ok());
}

TEST(ExprTest, EwBinaryRejectsMismatch) {
  auto a = Expr::Input("A", 10, 20);
  auto b = Expr::Input("B", 10, 21);
  EXPECT_FALSE(Expr::EwBinary(BinaryOp::kAdd, a, b).ok());
}

TEST(ExprTest, TransposeSwapsShape) {
  auto a = Expr::Input("A", 10, 20);
  auto t = Expr::Transpose(a);
  EXPECT_EQ(t->rows(), 20);
  EXPECT_EQ(t->cols(), 10);
}

TEST(ExprTest, OperatorsBuildExpectedKinds) {
  auto a = Expr::Input("A", 4, 4);
  auto b = Expr::Input("B", 4, 4);
  EXPECT_EQ((a * b)->kind(), ExprKind::kMatMul);
  EXPECT_EQ((a + b)->kind(), ExprKind::kEwBinary);
  EXPECT_EQ((a - b)->bop(), BinaryOp::kSub);
  EXPECT_EQ(EMul(a, b)->bop(), BinaryOp::kMul);
  EXPECT_EQ(EDiv(a, b)->bop(), BinaryOp::kDiv);
  EXPECT_EQ(Scale(a, 2.0)->kind(), ExprKind::kEwUnary);
  EXPECT_EQ(T(a)->kind(), ExprKind::kTranspose);
}

TEST(ExprTest, ContainsMatMul) {
  auto a = Expr::Input("A", 4, 4);
  auto b = Expr::Input("B", 4, 4);
  EXPECT_FALSE((a + b)->ContainsMatMul());
  EXPECT_TRUE(Scale(a * b, 2.0)->ContainsMatMul());
}

TEST(ExprTest, DebugStringRendersStructure) {
  auto a = Expr::Input("A", 4, 4);
  auto b = Expr::Input("B", 4, 4);
  EXPECT_EQ((a * b)->DebugString(), "(A * B)");
  EXPECT_EQ(T(a)->DebugString(), "A^T");
}

TEST(ProgramTest, DebugStringListsAssignments) {
  Program p;
  auto a = Expr::Input("A", 2, 2);
  p.Assign("X", Scale(a, 2.0));
  EXPECT_NE(p.DebugString().find("X := "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logical optimizer
// ---------------------------------------------------------------------------

TEST(OptimizerTest, MatMulFlopsCountsProducts) {
  auto a = Expr::Input("A", 10, 20);
  auto b = Expr::Input("B", 20, 30);
  EXPECT_DOUBLE_EQ(MatMulFlops(a * b), 2.0 * 10 * 20 * 30);
}

TEST(OptimizerTest, ChainReorderingReducesFlops) {
  // (A * B) * v with skinny v: optimal is A * (B * v).
  auto a = Expr::Input("A", 1000, 1000);
  auto b = Expr::Input("B", 1000, 1000);
  auto v = Expr::Input("v", 1000, 1);
  auto naive = (a * b) * v;
  auto optimized = OptimizeExpr(naive);
  EXPECT_LT(MatMulFlops(optimized), MatMulFlops(naive) / 100.0);
  // Optimal shape: A * (B * v).
  EXPECT_EQ(optimized->DebugString(), "(A * (B * v))");
}

TEST(OptimizerTest, RsvdChainBecomesRightAssociated) {
  Program p = BuildRsvd1(RsvdSpec{4096, 1024, 16});
  Program opt = OptimizeProgram(p);
  EXPECT_LT(MatMulFlops(opt.assignments[0].expr),
            MatMulFlops(p.assignments[0].expr) / 10.0);
}

TEST(OptimizerTest, DoubleTransposeEliminated) {
  auto a = Expr::Input("A", 5, 7);
  auto twice = Expr::Transpose(Expr::Transpose(a));
  auto opt = OptimizeExpr(twice);
  EXPECT_EQ(opt->kind(), ExprKind::kInput);
  EXPECT_EQ(opt->DebugString(), "A");
}

TEST(OptimizerTest, PreservesShapes) {
  auto a = Expr::Input("A", 30, 40);
  auto b = Expr::Input("B", 40, 50);
  auto c = Expr::Input("C", 50, 2);
  auto expr = Scale((a * b) * c, 3.0);
  auto opt = OptimizeExpr(expr);
  EXPECT_EQ(opt->rows(), expr->rows());
  EXPECT_EQ(opt->cols(), expr->cols());
}

TEST(OptimizerTest, SingleFactorChainUntouched) {
  auto a = Expr::Input("A", 5, 5);
  auto opt = OptimizeExpr(a);
  EXPECT_EQ(opt.get(), a.get());
}

// ---------------------------------------------------------------------------
// Lowering + end-to-end correctness on the real engine
// ---------------------------------------------------------------------------

/// Runs a program for real on a tiny cluster and returns the outputs.
class LangExecTest : public ::testing::Test {
 protected:
  LangExecTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  DenseMatrix Bind(const std::string& name, int64_t rows, int64_t cols) {
    TiledMatrix m{name, TileLayout::Square(rows, cols, tile_dim_)};
    DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng_);
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    bindings_.insert_or_assign(name, m);
    return dense;
  }

  /// Lowers and executes; returns the map of output matrices.
  std::map<std::string, TiledMatrix> Run(const Program& program,
                                         bool fusion = true) {
    LoweringOptions options;
    options.tile_dim = tile_dim_;
    options.enable_fusion = fusion;
    auto lowered = Lower(program, bindings_, options);
    CUMULON_CHECK(lowered.ok()) << lowered.status();
    auto stats = executor_.Run(lowered->plan);
    CUMULON_CHECK(stats.ok()) << stats.status();
    last_num_jobs_ = static_cast<int>(stats->jobs.size());
    return lowered->outputs;
  }

  void ExpectMatches(const TiledMatrix& m, const DenseMatrix& expected,
                     double tol = 1e-8) {
    auto loaded = LoadDense(m, &store_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    auto diff = expected.MaxAbsDiff(*loaded);
    ASSERT_TRUE(diff.ok()) << diff.status();
    EXPECT_LT(diff.value(), tol);
  }

  int64_t tile_dim_ = 8;
  Rng rng_{17};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
  std::map<std::string, TiledMatrix> bindings_;
  int last_num_jobs_ = 0;
};

TEST_F(LangExecTest, SimpleMultiply) {
  DenseMatrix da = Bind("A", 16, 24);
  DenseMatrix db = Bind("B", 24, 8);
  Program p;
  p.Assign("C", Expr::Input("A", 16, 24) * Expr::Input("B", 24, 8));
  auto outputs = Run(p);
  auto expected = da.Multiply(db);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(outputs.at("C"), *expected);
}

TEST_F(LangExecTest, FusedEpilogueMatchesUnfused) {
  DenseMatrix da = Bind("A", 16, 16);
  DenseMatrix db = Bind("B", 16, 16);
  DenseMatrix dd = Bind("D", 16, 16);
  auto build = [] {
    Program p;
    auto a = Expr::Input("A", 16, 16);
    auto b = Expr::Input("B", 16, 16);
    auto d = Expr::Input("D", 16, 16);
    p.Assign("C", Scale(a * b + d, 0.5));
    return p;
  };
  auto fused_out = Run(build(), /*fusion=*/true);
  const int fused_jobs = last_num_jobs_;
  auto loaded_fused = LoadDense(fused_out.at("C"), &store_);
  ASSERT_TRUE(loaded_fused.ok());

  auto unfused_out = Run(build(), /*fusion=*/false);
  const int unfused_jobs = last_num_jobs_;
  auto loaded_unfused = LoadDense(unfused_out.at("C"), &store_);
  ASSERT_TRUE(loaded_unfused.ok());

  auto diff = loaded_fused->MaxAbsDiff(*loaded_unfused);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
  EXPECT_LT(fused_jobs, unfused_jobs);  // fusion saves whole jobs

  auto expected = da.Multiply(db)->Binary(BinaryOp::kAdd, dd);
  ASSERT_TRUE(expected.ok());
  ExpectMatches(fused_out.at("C"), expected->Unary(UnaryOp::kScale, 0.5));
}

TEST_F(LangExecTest, TransposeLowering) {
  DenseMatrix da = Bind("A", 24, 16);
  Program p;
  p.Assign("At", T(Expr::Input("A", 24, 16)));
  auto outputs = Run(p);
  ExpectMatches(outputs.at("At"), da.Transpose());
}

TEST_F(LangExecTest, AliasAssignmentCopies) {
  DenseMatrix da = Bind("A", 8, 8);
  Program p;
  p.Assign("B", Expr::Input("A", 8, 8));
  auto outputs = Run(p);
  ExpectMatches(outputs.at("B"), da);
}

TEST_F(LangExecTest, ReassignmentVersionsMatrices) {
  DenseMatrix da = Bind("A", 8, 8);
  Program p;
  auto a = Expr::Input("A", 8, 8);
  p.Assign("X", Scale(a, 2.0));
  p.Assign("X", Scale(Expr::Input("X", 8, 8), 3.0));  // uses previous X
  auto outputs = Run(p);
  EXPECT_EQ(outputs.at("X").name, "X@v2");
  ExpectMatches(outputs.at("X"), da.Unary(UnaryOp::kScale, 6.0));
}

TEST_F(LangExecTest, UnboundInputFailsCleanly) {
  Program p;
  p.Assign("Y", Scale(Expr::Input("missing", 4, 4), 1.0));
  LoweringOptions options;
  options.tile_dim = 8;
  auto lowered = Lower(p, bindings_, options);
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.status().code(), StatusCode::kNotFound);
}

TEST_F(LangExecTest, DimensionMismatchAgainstBindingFails) {
  Bind("A", 8, 8);
  Program p;
  p.Assign("Y", Scale(Expr::Input("A", 8, 9), 1.0));
  LoweringOptions options;
  options.tile_dim = 8;
  auto lowered = Lower(p, bindings_, options);
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LangExecTest, RsvdProgramEndToEnd) {
  RsvdSpec spec;
  spec.m = 24;
  spec.n = 16;
  spec.l = 4;
  DenseMatrix da = Bind("A", spec.m, spec.n);
  DenseMatrix domega = Bind("Omega", spec.n, spec.l);
  Program p = OptimizeProgram(BuildRsvd1(spec));
  auto outputs = Run(p);
  // Reference: A * (A^T * (A * Omega)).
  auto y = da.Multiply(*da.Transpose().Multiply(*da.Multiply(domega)));
  ASSERT_TRUE(y.ok());
  ExpectMatches(outputs.at("Y"), *y, 1e-6);
}

TEST_F(LangExecTest, GnmfIterationEndToEnd) {
  GnmfSpec spec;
  spec.m = 16;
  spec.n = 12;
  spec.k = 4;
  // GNMF needs positive data for the multiplicative updates.
  auto bind_uniform = [&](const std::string& name, int64_t rows,
                          int64_t cols) {
    TiledMatrix m{name, TileLayout::Square(rows, cols, tile_dim_)};
    DenseMatrix dense(rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        dense.Set(r, c, rng_.NextDouble(0.1, 1.0));
      }
    }
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    bindings_.insert_or_assign(name, m);
    return dense;
  };
  DenseMatrix dv = bind_uniform("V", spec.m, spec.n);
  DenseMatrix dw = bind_uniform("W", spec.m, spec.k);
  DenseMatrix dh = bind_uniform("H", spec.k, spec.n);

  Program p = OptimizeProgram(BuildGnmfIteration(spec));
  auto outputs = Run(p);

  // Reference updates.
  auto wt = dw.Transpose();
  auto numer_h = wt.Multiply(dv);
  auto denom_h = wt.Multiply(dw)->Multiply(dh);
  auto h_new = dh.Binary(BinaryOp::kMul,
                         *numer_h->Binary(BinaryOp::kDiv, *denom_h));
  ASSERT_TRUE(h_new.ok());
  ExpectMatches(outputs.at("H"), *h_new, 1e-8);

  auto ht = h_new->Transpose();
  auto numer_w = dv.Multiply(ht);
  auto denom_w = dw.Multiply(*h_new)->Multiply(ht);
  auto w_new = dw.Binary(BinaryOp::kMul,
                         *numer_w->Binary(BinaryOp::kDiv, *denom_w));
  ASSERT_TRUE(w_new.ok());
  ExpectMatches(outputs.at("W"), *w_new, 1e-8);
}

TEST_F(LangExecTest, LinRegStepEndToEnd) {
  LinRegSpec spec;
  spec.samples = 24;
  spec.features = 8;
  spec.alpha = 0.01;
  DenseMatrix dx = Bind("X", spec.samples, spec.features);
  DenseMatrix dw = Bind("w", spec.features, 1);
  DenseMatrix dy = Bind("y", spec.samples, 1);
  Program p = OptimizeProgram(BuildLinRegStep(spec));
  auto outputs = Run(p);
  // w - alpha * X^T (X w - y)
  auto xw = dx.Multiply(dw);
  auto residual = xw->Binary(BinaryOp::kSub, dy);
  auto grad = dx.Transpose().Multiply(*residual);
  auto expected =
      dw.Binary(BinaryOp::kSub, grad->Unary(UnaryOp::kScale, spec.alpha));
  ASSERT_TRUE(expected.ok());
  ExpectMatches(outputs.at("w"), *expected, 1e-8);
}

TEST_F(LangExecTest, MatMulParamsCallbackReceivesGridDims) {
  Bind("A", 32, 16);
  Bind("B", 16, 24);
  Program p;
  p.Assign("C", Expr::Input("A", 32, 16) * Expr::Input("B", 16, 24));
  LoweringOptions options;
  options.tile_dim = 8;
  bool called = false;
  options.mm_params = [&called](int64_t gi, int64_t gj, int64_t gk) {
    called = true;
    EXPECT_EQ(gi, 4);
    EXPECT_EQ(gj, 3);
    EXPECT_EQ(gk, 2);
    return MatMulParams{1, 1, 0};
  };
  auto lowered = Lower(p, bindings_, options);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  EXPECT_TRUE(called);
}

}  // namespace
}  // namespace cumulon
