#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "cluster/steal_domain.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "dfs/dfs_tile_store.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// StealDomain / TaskSplitScope unit behavior
// ---------------------------------------------------------------------------

TEST(StealDomainTest, EverySplitRunsExactlyOnce) {
  StealDomain domain(2);
  domain.BeginJob(1);
  constexpr int kSplits = 64;
  std::vector<std::atomic<int>> ran(kSplits);
  for (auto& r : ran) r.store(0);

  TaskSplitScope scope(&domain, "unit", /*machine=*/0);
  for (int i = 0; i < kSplits; ++i) {
    scope.Add([&ran, i]() -> Status {
      ran[i].fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(scope.RunAndWait().ok());
  domain.NoteTaskFinished();

  for (int i = 0; i < kSplits; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "split " << i;
  }
  const StealDomainStats stats = domain.stats();
  EXPECT_EQ(stats.splits_enqueued, kSplits);
}

TEST(StealDomainTest, RunAndWaitReturnsFirstSplitError) {
  StealDomain domain(2);
  domain.BeginJob(1);
  TaskSplitScope scope(&domain, "unit", 0);
  scope.Add([]() -> Status { return Status::OK(); });
  scope.Add([]() -> Status { return Status::Internal("boom"); });
  scope.Add([]() -> Status { return Status::OK(); });
  const Status s = scope.RunAndWait();
  domain.NoteTaskFinished();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("boom"), std::string::npos) << s;
}

TEST(StealDomainTest, HelperDrainStealsFromBusyOwner) {
  // One owner publishes slow splits; a second participant (the engine's
  // helper drain stand-in) must pull work from the owner's deque tail while
  // the owner is busy inside a split body.
  StealDomain domain(2);
  domain.BeginJob(1);
  constexpr int kSplits = 32;
  std::atomic<int> executed{0};

  std::thread helper([&domain] { domain.HelpDrain(); });

  TaskSplitScope scope(&domain, "straggler", 0);
  for (int i = 0; i < kSplits; ++i) {
    scope.Add([&executed]() -> Status {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      executed.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(scope.RunAndWait().ok());
  domain.NoteTaskFinished();
  helper.join();

  EXPECT_EQ(executed.load(), kSplits);
  const StealDomainStats stats = domain.stats();
  EXPECT_EQ(stats.splits_enqueued, kSplits);
  EXPECT_GT(stats.splits_stolen, 0)
      << "helper never stole despite the owner sleeping in every split";
  EXPECT_GE(stats.steal_attempts, stats.splits_stolen);
}

TEST(StealDomainTest, NullDomainScopeRunsInlineAndStopsOnError) {
  // With no domain attached, Add executes immediately and later splits are
  // skipped after the first failure — the classic non-stealing task body.
  int ran = 0;
  TaskSplitScope scope(nullptr, "inline", 0);
  scope.Add([&ran]() -> Status {
    ++ran;
    return Status::OK();
  });
  scope.Add([&ran]() -> Status {
    ++ran;
    return Status::Internal("first failure");
  });
  scope.Add([&ran]() -> Status {
    ++ran;  // must not run
    return Status::OK();
  });
  const Status s = scope.RunAndWait();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ran, 2);
}

TEST(StealDomainTest, ConcurrentScopesShareOneDomain) {
  // Two tasks publishing into one domain concurrently: each scope's
  // RunAndWait must only account for its own splits.
  StealDomain domain(4);
  domain.BeginJob(2);
  std::atomic<int> a_runs{0};
  std::atomic<int> b_runs{0};

  std::thread ta([&] {
    TaskSplitScope scope(&domain, "a", 0);
    for (int i = 0; i < 20; ++i) {
      scope.Add([&a_runs]() -> Status {
        a_runs.fetch_add(1);
        return Status::OK();
      });
    }
    EXPECT_TRUE(scope.RunAndWait().ok());
    domain.NoteTaskFinished();
  });
  std::thread tb([&] {
    TaskSplitScope scope(&domain, "b", 1);
    for (int i = 0; i < 20; ++i) {
      scope.Add([&b_runs]() -> Status {
        b_runs.fetch_add(1);
        return Status::OK();
      });
    }
    EXPECT_TRUE(scope.RunAndWait().ok());
    domain.NoteTaskFinished();
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a_runs.load(), 20);
  EXPECT_EQ(b_runs.load(), 20);
  EXPECT_EQ(domain.stats().splits_enqueued, 40);
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

/// Same harness as exec_test.cc, parameterized on enable_work_stealing.
class StealExecTest : public ::testing::Test {
 protected:
  std::unique_ptr<Executor> MakeExecutor(bool stealing) {
    ExecutorOptions options;
    options.enable_work_stealing = stealing;
    return std::make_unique<Executor>(&store_, &engine_, &cost_, options);
  }

  DenseMatrix MakeInput(const TiledMatrix& m) {
    DenseMatrix dense =
        DenseMatrix::Gaussian(m.layout.rows(), m.layout.cols(), &rng_);
    CUMULON_CHECK(StoreDense(dense, m, &store_).ok());
    return dense;
  }

  Rng rng_{42};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_{ClusterConfig{MachineProfile{}, 2, 2},
                     RealEngineOptions{}};
};

TEST_F(StealExecTest, MatMulBitIdenticalWithAndWithoutStealing) {
  TiledMatrix a{"A", TileLayout::Square(48, 48, 16)};
  TiledMatrix b{"B", TileLayout::Square(48, 48, 16)};
  MakeInput(a);
  MakeInput(b);

  TiledMatrix c_plain{"C_plain", TileLayout::Square(48, 48, 16)};
  TiledMatrix c_steal{"C_steal", TileLayout::Square(48, 48, 16)};

  // One task owns the whole 3x3 output grid, so its 9 splits are the only
  // work — the shape where stealing actually redistributes splits.
  PhysicalPlan plan_plain;
  ASSERT_TRUE(
      AddMatMul(a, b, c_plain, MatMulParams{3, 3, 0}, {}, &plan_plain).ok());
  auto stats_plain = MakeExecutor(false)->Run(plan_plain);
  ASSERT_TRUE(stats_plain.ok()) << stats_plain.status();

  PhysicalPlan plan_steal;
  ASSERT_TRUE(
      AddMatMul(a, b, c_steal, MatMulParams{3, 3, 0}, {}, &plan_steal).ok());
  auto stats_steal = MakeExecutor(true)->Run(plan_steal);
  ASSERT_TRUE(stats_steal.ok()) << stats_steal.status();

  // Who runs a split must not change what it computes: stealing on and off
  // have to agree to the bit.
  auto plain = LoadDense(c_plain, &store_);
  auto steal = LoadDense(c_steal, &store_);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_TRUE(steal.ok()) << steal.status();
  auto diff = plain->MaxAbsDiff(*steal);
  ASSERT_TRUE(diff.ok()) << diff.status();
  EXPECT_EQ(diff.value(), 0.0);
}

TEST_F(StealExecTest, StealCountersOnlyAppearForStealingRuns) {
  TiledMatrix a{"A", TileLayout::Square(64, 64, 16)};
  TiledMatrix b{"B", TileLayout::Square(64, 64, 16)};
  MakeInput(a);
  MakeInput(b);

  TiledMatrix c0{"C0", TileLayout::Square(64, 64, 16)};
  PhysicalPlan p0;
  ASSERT_TRUE(AddMatMul(a, b, c0, MatMulParams{4, 4, 0}, {}, &p0).ok());
  auto plain = MakeExecutor(false)->Run(p0);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->metrics.counters.count("exec.steal.splits"), 0u)
      << "non-stealing runs must keep their historical metric set";

  TiledMatrix c1{"C1", TileLayout::Square(64, 64, 16)};
  PhysicalPlan p1;
  ASSERT_TRUE(AddMatMul(a, b, c1, MatMulParams{4, 4, 0}, {}, &p1).ok());
  auto stolen = MakeExecutor(true)->Run(p1);
  ASSERT_TRUE(stolen.ok()) << stolen.status();
  EXPECT_EQ(stolen->metrics.CounterOr("exec.steal.splits", 0), 16)
      << "one task owning the 4x4 output grid must publish 16 splits";
  // Stolen/attempt counts depend on thread timing; presence is the
  // contract, value is not.
  EXPECT_GE(stolen->metrics.CounterOr("exec.steal.stolen", -1), 0);
  EXPECT_GE(stolen->metrics.CounterOr("exec.steal.attempts", -1), 0);
}

TEST_F(StealExecTest, EwChainMatchesReferenceUnderStealing) {
  TiledMatrix x{"X", TileLayout::Square(40, 56, 16)};
  DenseMatrix dx = MakeInput(x);
  TiledMatrix y{"Y", TileLayout::Square(40, 56, 16)};

  PhysicalPlan plan;
  std::vector<EwStep> steps;
  steps.push_back(EwStep::Unary(UnaryOp::kScale, 2.0));
  steps.push_back(EwStep::Unary(UnaryOp::kAddScalar, -1.0));
  ASSERT_TRUE(AddEwChain(x, y, std::move(steps), &plan).ok());
  auto stats = MakeExecutor(true)->Run(plan);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto loaded = LoadDense(y, &store_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (int64_t r = 0; r < dx.rows(); ++r) {
    for (int64_t c = 0; c < dx.cols(); ++c) {
      EXPECT_EQ(loaded->At(r, c), dx.At(r, c) * 2.0 - 1.0);
    }
  }
}

}  // namespace
}  // namespace cumulon
