#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "dfs/dfs_tile_store.h"
#include "dfs/sim_dfs.h"

namespace cumulon {
namespace {

DfsOptions SmallDfs() {
  DfsOptions o;
  o.num_nodes = 4;
  o.replication = 2;
  o.block_size = 1024;
  return o;
}

TEST(SimDfsTest, WriteReadRoundTrip) {
  SimDfs dfs(SmallDfs());
  auto payload = std::make_shared<int>(42);
  ASSERT_TRUE(dfs.Write("/f", 100, 0, payload).ok());
  auto read = dfs.Read("/f", 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*std::static_pointer_cast<const int>(read.value()), 42);
}

TEST(SimDfsTest, ReadMissingFileIsNotFound) {
  SimDfs dfs(SmallDfs());
  EXPECT_EQ(dfs.Read("/nope", 0).status().code(), StatusCode::kNotFound);
}

TEST(SimDfsTest, FileSplitsIntoBlocks) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 2500, 0, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 2500);
  ASSERT_EQ(info->blocks.size(), 3u);
  EXPECT_EQ(info->blocks[0].size, 1024);
  EXPECT_EQ(info->blocks[1].size, 1024);
  EXPECT_EQ(info->blocks[2].size, 452);
}

TEST(SimDfsTest, EmptyFileHasOneEmptyBlock) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 0, 0, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks.size(), 1u);
  EXPECT_EQ(info->blocks[0].size, 0);
}

TEST(SimDfsTest, NegativeSizeRejected) {
  SimDfs dfs(SmallDfs());
  EXPECT_FALSE(dfs.Write("/f", -1, 0, nullptr).ok());
}

TEST(SimDfsTest, FirstReplicaOnWriter) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 3000, 2, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  for (const BlockInfo& block : info->blocks) {
    ASSERT_FALSE(block.replicas.empty());
    EXPECT_EQ(block.replicas[0], 2);
  }
}

TEST(SimDfsTest, ReplicasAreDistinctAndRightCount) {
  DfsOptions o = SmallDfs();
  o.replication = 3;
  SimDfs dfs(o);
  ASSERT_TRUE(dfs.Write("/f", 5000, 1, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  for (const BlockInfo& block : info->blocks) {
    EXPECT_EQ(block.replicas.size(), 3u);
    std::set<int> unique(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(unique.size(), block.replicas.size());
    for (int r : block.replicas) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, o.num_nodes);
    }
  }
}

TEST(SimDfsTest, ReplicationCappedAtNodeCount) {
  DfsOptions o;
  o.num_nodes = 2;
  o.replication = 5;
  SimDfs dfs(o);
  ASSERT_TRUE(dfs.Write("/f", 10, 0, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->blocks[0].replicas.size(), 2u);
}

TEST(SimDfsTest, LocalVsRemoteReadAccounting) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 1000, 0, nullptr).ok());
  // Node 0 holds a replica (writer); reading from it is local.
  ASSERT_TRUE(dfs.Read("/f", 0).ok());
  DfsStats stats = dfs.TotalStats();
  EXPECT_EQ(stats.bytes_read_local, 1000);
  EXPECT_EQ(stats.bytes_read_remote, 0);

  // A node with no replica reads remotely.
  auto hosting = dfs.NodesHosting("/f");
  ASSERT_TRUE(hosting.ok());
  int outsider = -1;
  for (int n = 0; n < 4; ++n) {
    if (std::find(hosting->begin(), hosting->end(), n) == hosting->end()) {
      outsider = n;
      break;
    }
  }
  ASSERT_GE(outsider, 0) << "replication 2 of 4 nodes must leave an outsider";
  ASSERT_TRUE(dfs.Read("/f", outsider).ok());
  stats = dfs.TotalStats();
  EXPECT_EQ(stats.bytes_read_remote, 1000);
  EXPECT_NEAR(stats.locality_fraction(), 0.5, 1e-12);
}

TEST(SimDfsTest, UnknownReaderCountsRemote) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 700, 0, nullptr).ok());
  ASSERT_TRUE(dfs.Read("/f", -1).ok());
  EXPECT_EQ(dfs.TotalStats().bytes_read_remote, 700);
}

TEST(SimDfsTest, PerNodeStats) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 100, 1, nullptr).ok());
  ASSERT_TRUE(dfs.Read("/f", 1).ok());
  EXPECT_EQ(dfs.NodeStats(1).bytes_written, 100);
  EXPECT_EQ(dfs.NodeStats(1).bytes_read_local, 100);
  EXPECT_EQ(dfs.NodeStats(0).bytes_written, 0);
}

TEST(SimDfsTest, DeleteAndExists) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 10, 0, nullptr).ok());
  EXPECT_TRUE(dfs.Exists("/f"));
  ASSERT_TRUE(dfs.Delete("/f").ok());
  EXPECT_FALSE(dfs.Exists("/f"));
  EXPECT_EQ(dfs.Delete("/f").code(), StatusCode::kNotFound);
}

TEST(SimDfsTest, DeletePrefixRemovesSubtreeOnly) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/a/1", 10, 0, nullptr).ok());
  ASSERT_TRUE(dfs.Write("/a/2", 10, 0, nullptr).ok());
  ASSERT_TRUE(dfs.Write("/ab", 10, 0, nullptr).ok());
  EXPECT_EQ(dfs.DeletePrefix("/a/"), 2);
  EXPECT_FALSE(dfs.Exists("/a/1"));
  EXPECT_TRUE(dfs.Exists("/ab"));
}

TEST(SimDfsTest, OverwriteReplacesContents) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 100, 0, nullptr).ok());
  ASSERT_TRUE(dfs.Write("/f", 200, 1, nullptr).ok());
  auto info = dfs.Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 200);
  EXPECT_EQ(dfs.NumFiles(), 1);
}

TEST(SimDfsTest, StoredBytesAndNodeStoredBytes) {
  DfsOptions o = SmallDfs();
  o.replication = 2;
  SimDfs dfs(o);
  ASSERT_TRUE(dfs.Write("/f", 1000, 0, nullptr).ok());
  EXPECT_EQ(dfs.TotalStoredBytes(), 1000);
  int64_t replicated = 0;
  for (int n = 0; n < o.num_nodes; ++n) replicated += dfs.NodeStoredBytes(n);
  EXPECT_EQ(replicated, 2000);  // two replicas of every block
}

TEST(SimDfsTest, ResetStatsClearsCounters) {
  SimDfs dfs(SmallDfs());
  ASSERT_TRUE(dfs.Write("/f", 10, 0, nullptr).ok());
  ASSERT_TRUE(dfs.Read("/f", 0).ok());
  dfs.ResetStats();
  DfsStats stats = dfs.TotalStats();
  EXPECT_EQ(stats.bytes_written, 0);
  EXPECT_EQ(stats.bytes_read(), 0);
  EXPECT_EQ(stats.reads, 0);
}

TEST(SimDfsTest, PlacementDeterministicPerSeed) {
  SimDfs d1(SmallDfs()), d2(SmallDfs());
  ASSERT_TRUE(d1.Write("/f", 5000, -1, nullptr).ok());
  ASSERT_TRUE(d2.Write("/f", 5000, -1, nullptr).ok());
  auto i1 = d1.Stat("/f"), i2 = d2.Stat("/f");
  ASSERT_TRUE(i1.ok() && i2.ok());
  ASSERT_EQ(i1->blocks.size(), i2->blocks.size());
  for (size_t b = 0; b < i1->blocks.size(); ++b) {
    EXPECT_EQ(i1->blocks[b].replicas, i2->blocks[b].replicas);
  }
}

// ---------------------------------------------------------------------------
// DfsTileStore
// ---------------------------------------------------------------------------

TEST(DfsTileStoreTest, PutGetRoundTripWithPayload) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  auto tile = std::make_shared<Tile>(4, 4);
  tile->Set(1, 1, 7.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, tile, 0).ok());
  auto got = store.Get("m", TileId{0, 0}, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->At(1, 1), 7.0);
  // And the DFS metered the transfer.
  EXPECT_EQ(dfs.TotalStats().bytes_written, tile->SizeBytes());
  EXPECT_EQ(dfs.TotalStats().bytes_read_local, tile->SizeBytes());
}

TEST(DfsTileStoreTest, PreferredNodesMatchReplicaHolders) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  auto tile = std::make_shared<Tile>(2, 2);
  ASSERT_TRUE(store.Put("m", TileId{1, 2}, tile, 3).ok());
  std::vector<int> nodes = store.PreferredNodes("m", TileId{1, 2});
  ASSERT_FALSE(nodes.empty());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), 3), nodes.end());
}

TEST(DfsTileStoreTest, PreferredNodesEmptyForMissingTile) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  EXPECT_TRUE(store.PreferredNodes("m", TileId{0, 0}).empty());
}

TEST(DfsTileStoreTest, PutMetaRegistersPlacementWithoutData) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  ASSERT_TRUE(store.PutMeta("m", TileId{0, 0}, 500, 2).ok());
  EXPECT_FALSE(store.PreferredNodes("m", TileId{0, 0}).empty());
  // Reading data back must fail loudly: there is no payload.
  auto got = store.Get("m", TileId{0, 0}, 2);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(DfsTileStoreTest, DeleteMatrixRemovesAllTiles) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs);
  auto tile = std::make_shared<Tile>(2, 2);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, tile, 0).ok());
  ASSERT_TRUE(store.Put("m", TileId{0, 1}, tile, 0).ok());
  ASSERT_TRUE(store.Put("other", TileId{0, 0}, tile, 0).ok());
  ASSERT_TRUE(store.DeleteMatrix("m").ok());
  EXPECT_FALSE(store.Get("m", TileId{0, 0}, 0).ok());
  EXPECT_TRUE(store.Get("other", TileId{0, 0}, 0).ok());
}

TEST(DfsTileStoreTest, TilePathScheme) {
  EXPECT_EQ(DfsTileStore::TilePath("W", TileId{3, 5}), "/matrix/W/t_3_5");
}

TEST(DfsTileStoreTest, ChecksumVerificationPassesOnCleanData) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  auto tile = std::make_shared<Tile>(4, 4);
  tile->Set(2, 2, 5.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, tile, 0).ok());
  auto got = store.Get("m", TileId{0, 0}, 0);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ((*got)->At(2, 2), 5.0);
}

TEST(DfsTileStoreTest, ChecksumVerificationCatchesCorruption) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  auto tile = std::make_shared<Tile>(4, 4);
  tile->Set(0, 0, 1.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, tile, 0).ok());
  // Corrupt the block behind the store's back: overwrite the DFS file
  // with a different payload while the recorded checksum stays stale.
  auto corrupted = std::make_shared<Tile>(4, 4);
  corrupted->Set(0, 0, 666.0);
  ASSERT_TRUE(dfs.Write(DfsTileStore::TilePath("m", TileId{0, 0}),
                        corrupted->SizeBytes(), 0, corrupted).ok());
  auto got = store.Get("m", TileId{0, 0}, 0);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  EXPECT_NE(got.status().message().find("checksum"), std::string::npos);
}

TEST(DfsTileStoreTest, ChecksumOverwriteRefreshes) {
  SimDfs dfs(SmallDfs());
  DfsTileStore store(&dfs, /*verify_checksums=*/true);
  auto t1 = std::make_shared<Tile>(2, 2);
  t1->Set(0, 0, 1.0);
  auto t2 = std::make_shared<Tile>(2, 2);
  t2->Set(0, 0, 2.0);
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, t1, 0).ok());
  ASSERT_TRUE(store.Put("m", TileId{0, 0}, t2, 0).ok());
  auto got = store.Get("m", TileId{0, 0}, 0);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ((*got)->At(0, 0), 2.0);
}

}  // namespace
}  // namespace cumulon
