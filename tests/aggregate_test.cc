#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "cluster/real_engine.h"
#include "common/rng.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/physical_plan.h"
#include "lang/lowering.h"
#include "matrix/dense_matrix.h"
#include "matrix/tiled_matrix.h"

namespace cumulon {
namespace {

// ---------------------------------------------------------------------------
// Tile-level kernels
// ---------------------------------------------------------------------------

TEST(AggKernelTest, RowSumsIntoAccumulates) {
  Tile t(3, 4);
  FillTile(&t, 1.0);
  Tile acc(3, 1);
  ASSERT_TRUE(RowSumsInto(t, &acc).ok());
  ASSERT_TRUE(RowSumsInto(t, &acc).ok());
  EXPECT_DOUBLE_EQ(acc.At(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(acc.At(2, 0), 8.0);
}

TEST(AggKernelTest, ColSumsIntoAccumulates) {
  Tile t(3, 4);
  t.Set(0, 1, 2.0);
  t.Set(2, 1, 3.0);
  Tile acc(1, 4);
  ASSERT_TRUE(ColSumsInto(t, &acc).ok());
  EXPECT_DOUBLE_EQ(acc.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(acc.At(0, 0), 0.0);
}

TEST(AggKernelTest, RejectsWrongAccumulatorShape) {
  Tile t(3, 4);
  Tile bad(4, 1);
  EXPECT_FALSE(RowSumsInto(t, &bad).ok());
  Tile bad2(1, 3);
  EXPECT_FALSE(ColSumsInto(t, &bad2).ok());
}

TEST(AggKernelTest, MatchesDenseReference) {
  Rng rng(31);
  DenseMatrix dense = DenseMatrix::Gaussian(7, 9, &rng);
  Tile t(7, 9);
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t c = 0; c < 9; ++c) t.Set(r, c, dense.At(r, c));
  }
  Tile rows(7, 1), cols(1, 9);
  ASSERT_TRUE(RowSumsInto(t, &rows).ok());
  ASSERT_TRUE(ColSumsInto(t, &cols).ok());
  DenseMatrix expected_rows = dense.RowSums();
  DenseMatrix expected_cols = dense.ColSums();
  for (int64_t r = 0; r < 7; ++r) {
    EXPECT_NEAR(rows.At(r, 0), expected_rows.At(r, 0), 1e-12);
  }
  for (int64_t c = 0; c < 9; ++c) {
    EXPECT_NEAR(cols.At(0, c), expected_cols.At(0, c), 1e-12);
  }
}

TEST(DenseAggTest, TotalMatchesSumOfRowSums) {
  Rng rng(32);
  DenseMatrix dense = DenseMatrix::Gaussian(11, 5, &rng);
  double total = 0.0;
  DenseMatrix rows = dense.RowSums();
  for (int64_t r = 0; r < rows.rows(); ++r) total += rows.At(r, 0);
  EXPECT_NEAR(dense.Total(), total, 1e-10);
}

// ---------------------------------------------------------------------------
// AggregateJob
// ---------------------------------------------------------------------------

class AggregateJobTest : public ::testing::Test {
 protected:
  AggregateJobTest()
      : engine_(ClusterConfig{MachineProfile{}, 2, 2}, RealEngineOptions{}),
        executor_(&store_, &engine_, &cost_, ExecutorOptions{}) {}

  Rng rng_{33};
  InMemoryTileStore store_;
  TileOpCostModel cost_;
  RealEngine engine_;
  Executor executor_;
};

TEST_F(AggregateJobTest, AggOutputLayoutShapes) {
  TileLayout in(100, 60, 16, 8);
  TileLayout rows = AggOutputLayout(in, AggKind::kRowSums);
  EXPECT_EQ(rows.rows(), 100);
  EXPECT_EQ(rows.cols(), 1);
  EXPECT_EQ(rows.tile_rows(), 16);
  EXPECT_EQ(rows.grid_rows(), in.grid_rows());
  TileLayout cols = AggOutputLayout(in, AggKind::kColSums);
  EXPECT_EQ(cols.rows(), 1);
  EXPECT_EQ(cols.cols(), 60);
  EXPECT_EQ(cols.grid_cols(), in.grid_cols());
}

/// Parameterized over (rows, cols, tile, stripes_per_task, kind).
class AggregateParamTest
    : public AggregateJobTest,
      public ::testing::WithParamInterface<
          std::tuple<int64_t, int64_t, int64_t, int64_t, AggKind>> {};

TEST_P(AggregateParamTest, MatchesDenseReference) {
  const auto [rows, cols, tile, stripes, kind] = GetParam();
  TiledMatrix in{"X", TileLayout::Square(rows, cols, tile)};
  DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng_);
  ASSERT_TRUE(StoreDense(dense, in, &store_).ok());
  TiledMatrix out{"S", AggOutputLayout(in.layout, kind)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddAggregate(in, out, kind, {}, &plan, stripes).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto loaded = LoadDense(out, &store_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  DenseMatrix expected =
      kind == AggKind::kRowSums ? dense.RowSums() : dense.ColSums();
  auto diff = expected.MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AggregateParamTest,
    ::testing::Combine(::testing::Values(16, 40), ::testing::Values(16, 24),
                       ::testing::Values(8, 16), ::testing::Values(1, 3),
                       ::testing::Values(AggKind::kRowSums,
                                         AggKind::kColSums)));

TEST_F(AggregateJobTest, EpilogueTurnsSumsIntoMeans) {
  const int64_t rows = 24, cols = 16;
  TiledMatrix in{"X", TileLayout::Square(rows, cols, 8)};
  DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng_);
  ASSERT_TRUE(StoreDense(dense, in, &store_).ok());
  TiledMatrix out{"M", AggOutputLayout(in.layout, AggKind::kRowSums)};
  PhysicalPlan plan;
  ASSERT_TRUE(AddAggregate(in, out, AggKind::kRowSums,
                           {EwStep::Unary(UnaryOp::kScale, 1.0 / cols)},
                           &plan).ok());
  ASSERT_TRUE(executor_.Run(plan).ok());
  auto loaded = LoadDense(out, &store_);
  ASSERT_TRUE(loaded.ok());
  DenseMatrix expected = dense.RowSums().Unary(UnaryOp::kScale, 1.0 / cols);
  auto diff = expected.MaxAbsDiff(*loaded);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-12);
}

TEST_F(AggregateJobTest, RejectsWrongOutputLayout) {
  TiledMatrix in{"X", TileLayout::Square(16, 16, 8)};
  TiledMatrix out{"S", TileLayout::Square(16, 1, 8)};  // tile_cols 8, not 1
  PhysicalPlan plan;
  ASSERT_TRUE(AddAggregate(in, out, AggKind::kRowSums, {}, &plan).ok());
  EXPECT_FALSE(executor_.Run(plan).ok());
}

TEST_F(AggregateJobTest, DeclaredCostCoversAllInputBytes) {
  TiledMatrix in{"X", TileLayout::Square(64, 64, 16)};
  TiledMatrix out{"S", AggOutputLayout(in.layout, AggKind::kColSums)};
  AggregateJob job("agg", in, out, AggKind::kColSums, {}, 2);
  TileOpCostModel cost;
  BuildContext ctx{nullptr, &cost, false, false};
  auto built = job.Build(ctx);
  ASSERT_TRUE(built.ok()) << built.status();
  int64_t read = 0;
  for (const Task& t : built->spec.tasks) read += t.cost.bytes_read;
  EXPECT_EQ(read, in.layout.TotalBytes());
  EXPECT_EQ(built->spec.tasks.size(), 2u);  // 4 stripes / 2 per task
}

// ---------------------------------------------------------------------------
// Language integration
// ---------------------------------------------------------------------------

TEST(AggLangTest, RowColSumAllShapesAndDebugStrings) {
  auto a = Expr::Input("A", 10, 4);
  auto rows = Expr::RowSums(a);
  EXPECT_EQ(rows->rows(), 10);
  EXPECT_EQ(rows->cols(), 1);
  auto cols = Expr::ColSums(a);
  EXPECT_EQ(cols->rows(), 1);
  EXPECT_EQ(cols->cols(), 4);
  auto total = Expr::SumAll(a);
  EXPECT_EQ(total->rows(), 1);
  EXPECT_EQ(total->cols(), 1);
  EXPECT_EQ(rows->DebugString(), "row_sums(A)");
  EXPECT_EQ(total->DebugString(), "col_sums(row_sums(A))");
}

TEST(AggLangTest, EndToEndColumnMeans) {
  InMemoryTileStore store;
  Rng rng(34);
  const int64_t rows = 32, cols = 24, tile = 8;
  TiledMatrix x{"X", TileLayout::Square(rows, cols, tile)};
  DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng);
  ASSERT_TRUE(StoreDense(dense, x, &store).ok());

  Program p;
  p.Assign("mu", Scale(Expr::ColSums(Expr::Input("X", rows, cols)),
                       1.0 / rows));
  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(p, {{"X", x}}, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  RealEngine engine(ClusterConfig{MachineProfile{}, 2, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  auto mu = LoadDense(lowered->outputs.at("mu"), &store);
  ASSERT_TRUE(mu.ok());
  DenseMatrix expected = dense.ColSums().Unary(UnaryOp::kScale, 1.0 / rows);
  auto diff = expected.MaxAbsDiff(*mu);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff.value(), 1e-10);
}

TEST(AggLangTest, EndToEndSumAllMatchesTotal) {
  InMemoryTileStore store;
  Rng rng(35);
  const int64_t rows = 40, cols = 16, tile = 16;
  TiledMatrix x{"X", TileLayout::Square(rows, cols, tile)};
  DenseMatrix dense = DenseMatrix::Gaussian(rows, cols, &rng);
  ASSERT_TRUE(StoreDense(dense, x, &store).ok());

  Program p;
  p.Assign("s", Expr::SumAll(Expr::Input("X", rows, cols)));
  LoweringOptions lowering;
  lowering.tile_dim = tile;
  auto lowered = Lower(p, {{"X", x}}, lowering);
  ASSERT_TRUE(lowered.ok()) << lowered.status();

  RealEngine engine(ClusterConfig{MachineProfile{}, 1, 2},
                    RealEngineOptions{});
  TileOpCostModel cost;
  Executor executor(&store, &engine, &cost, ExecutorOptions{});
  ASSERT_TRUE(executor.Run(lowered->plan).ok());

  auto s = LoadDense(lowered->outputs.at("s"), &store);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->At(0, 0), dense.Total(), 1e-9);
}

}  // namespace
}  // namespace cumulon
